//! Socket-level torture: the server under client-side fault injection
//! ([`jsonski::faults::FaultyConn`]) and saturation load.
//!
//! The acceptance bar (ISSUE 8): under injected socket faults and 2×
//! saturation load, every *completed* response frame is byte-identical to
//! a serial one-shot run of the same query; overload produces typed shed
//! responses — never hangs, never truncated frames; a stalled or dying
//! client harms nothing but its own connection.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jsonski::faults::{FaultPlan, FaultyConn};
use jsonski::JsonSki;
use jsonski_serve::{
    encode_frame, encode_request, parse_response, read_frame, Client, Op, Response, ServeConfig,
    Server, DEFAULT_MAX_FRAME_BYTES,
};

fn start(
    config: ServeConfig,
) -> (
    String,
    jsonski::CancellationToken,
    std::thread::JoinHandle<std::io::Result<jsonski_serve::ServeSummary>>,
) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    (addr, token, handle)
}

fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i * 2,
                i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

/// Sends one query through a fault-injecting connection and reads the
/// response with the plain (un-faulted) frame reader.
fn faulty_query(
    addr: &str,
    plan: FaultPlan,
    id: &str,
    tenant: &str,
    query: &str,
    body: &[u8],
) -> std::io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut conn = FaultyConn::new(stream, plan);
    let payload = encode_request(Op::Query, id, tenant, query, Some(30_000), false, body);
    conn.write_all(&encode_frame(&payload))?;
    conn.flush()?;
    let frame = read_frame(&mut conn, DEFAULT_MAX_FRAME_BYTES)
        .map_err(|e| std::io::Error::other(e.to_string()))?
        .ok_or_else(|| std::io::Error::other("no response frame"))?;
    parse_response(&frame).map_err(|e| std::io::Error::other(e.to_string()))
}

/// Polls the metrics scrape until `probe` passes or the deadline expires.
fn wait_for_scrape(addr: &str, probe: impl Fn(&str) -> bool) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let mut c = Client::connect_tcp(addr).unwrap();
        let text = String::from_utf8(c.metrics(false).unwrap().body).unwrap();
        if probe(&text) || std::time::Instant::now() > deadline {
            return text;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn fragmented_frames_reassemble_byte_identically() {
    let (addr, token, handle) = start(ServeConfig::default());
    let body = Arc::new(ndjson(200));
    let queries = ["$.items[*].price", "$.id", "$..price"];
    let mut threads = Vec::new();
    for t in 0..6 {
        let addr = addr.clone();
        let body = Arc::clone(&body);
        threads.push(std::thread::spawn(move || {
            for r in 0..4u64 {
                let seed = t as u64 * 100 + r;
                // Tiny fragments + occasional client-side read interrupts:
                // the frame crosses the wire in hundreds of pieces.
                let plan = FaultPlan::new(seed).short_writes(7).interrupt_every(5);
                let query = queries[(seed as usize) % queries.len()];
                let resp = faulty_query(&addr, plan, &format!("t{t}r{r}"), "torture", query, &body)
                    .expect("fragmented request must complete");
                assert_eq!(resp.code, 200, "{:?}", resp.reason);
                assert_eq!(
                    resp.body,
                    serial_reference(query, &body),
                    "fragmented request diverged from serial run (seed {seed})"
                );
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn mid_frame_disconnects_do_not_corrupt_other_connections() {
    let config = ServeConfig {
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let body = Arc::new(ndjson(500));
    let stop = Arc::new(AtomicUsize::new(0));
    let rounds = Arc::new(AtomicUsize::new(0));
    // Healthy clients hammer the server while saboteurs die mid-frame.
    let mut healthy = Vec::new();
    for t in 0..4 {
        let addr = addr.clone();
        let body = Arc::clone(&body);
        let (stop, rounds) = (Arc::clone(&stop), Arc::clone(&rounds));
        healthy.push(std::thread::spawn(move || {
            let reference = serial_reference("$.items[*].price", &body);
            let mut n = 0u64;
            while stop.load(Ordering::SeqCst) == 0 {
                let mut c = Client::connect_tcp(&addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                let resp = c
                    .query(
                        &format!("h{t}n{n}"),
                        "healthy",
                        "$.items[*].price",
                        None,
                        &body,
                    )
                    .unwrap();
                assert_eq!(resp.code, 200, "{:?}", resp.reason);
                assert_eq!(resp.body, reference, "healthy connection corrupted");
                n += 1;
                rounds.fetch_add(1, Ordering::SeqCst);
            }
            n
        }));
    }
    // Saboteurs: disconnect at assorted offsets inside the frame —
    // inside the length prefix, inside the header, inside the body.
    for (i, cut) in [2u64, 9, 40, 200, 1000].into_iter().enumerate() {
        let plan = FaultPlan::new(i as u64).disconnect_after_writes(cut);
        let err = faulty_query(&addr, plan, "sab", "saboteur", "$.id", &body)
            .expect_err("saboteur must fail to complete");
        let _ = err;
    }
    // The server counted the broken frames and kept serving.
    let scrape = wait_for_scrape(&addr, |s| {
        s.lines()
            .find(|l| l.starts_with("serve_protocol_errors "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|v| v >= 5)
    });
    assert!(
        scrape.contains("serve_protocol_errors 5"),
        "expected 5 protocol errors in scrape:\n{scrape}"
    );
    // Don't call time before the healthy clients have had a chance to
    // prove the saboteurs harmed nobody: wait for at least one exact
    // round-trip *after* all the broken frames were counted.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while rounds.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(1, Ordering::SeqCst);
    let mut completed = 0;
    for h in healthy {
        completed += h.join().unwrap();
    }
    assert!(completed > 0, "healthy clients must have made progress");
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn stalled_writer_is_closed_not_pinned() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(40),
        stall_budget: 2,
        metrics_endpoint: true,
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    // The slow loris: every write stalls far past the read timeout, so
    // after the first fragment the server burns its stall budget and
    // closes the connection.
    let loris = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .unwrap();
            let plan = FaultPlan::new(7)
                .short_writes(2)
                .write_stall_every(2, Duration::from_millis(250));
            let mut conn = FaultyConn::new(stream, plan);
            let payload = encode_request(Op::Query, "loris", "t", "$.id", None, false, &ndjson(50));
            // Either a write eventually fails (server closed the socket)
            // or the write completes but no valid response ever arrives.
            match conn.write_all(&encode_frame(&payload)) {
                Err(_) => true, // closed mid-upload: the defense worked
                Ok(()) => {
                    let got = read_frame(&mut conn, DEFAULT_MAX_FRAME_BYTES);
                    !matches!(got, Ok(Some(ref f)) if parse_response(f).map(|r| r.code == 200).unwrap_or(false))
                }
            }
        })
    };
    // While the loris dangles, the server keeps answering others.
    let body = ndjson(100);
    let reference = serial_reference("$.id", &body);
    let mut c = Client::connect_tcp(&addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    for i in 0..10 {
        let resp = c
            .query(&format!("ok{i}"), "t", "$.id", None, &body)
            .unwrap();
        assert_eq!(resp.code, 200);
        assert_eq!(resp.body, reference);
    }
    assert!(
        loris.join().unwrap(),
        "stalled writer must be cut off, not served"
    );
    let scrape = wait_for_scrape(&addr, |s| s.contains("serve_stalled_conns 1"));
    assert!(
        scrape.contains("serve_stalled_conns 1"),
        "stall defense must be visible in the scrape:\n{scrape}"
    );
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn saturation_with_faults_sheds_typed_and_completes_exact() {
    // 2x saturation: a single worker, a 2-deep queue, 16 concurrent
    // heavyweight requests (descendant query: no fast-forwarding), plus
    // fragmented-writer clients mixed in.
    let config = ServeConfig {
        workers: 1,
        max_queue: 2,
        tenant_quota: 64,
        default_deadline: Duration::from_secs(60),
        max_deadline: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let heavy_body = Arc::new(ndjson(60_000));
    let light_body = Arc::new(ndjson(30));
    let heavy_ref = Arc::new(serial_reference("$..price", &heavy_body));
    let light_ref = Arc::new(serial_reference("$.items[*].price", &light_body));
    let sheds = Arc::new(AtomicUsize::new(0));
    let oks = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for t in 0..16 {
        let addr = addr.clone();
        let (heavy_body, light_body) = (Arc::clone(&heavy_body), Arc::clone(&light_body));
        let (heavy_ref, light_ref) = (Arc::clone(&heavy_ref), Arc::clone(&light_ref));
        let (sheds, oks) = (Arc::clone(&sheds), Arc::clone(&oks));
        threads.push(std::thread::spawn(move || {
            let heavy = t % 2 == 0;
            let (query, body, reference) = if heavy {
                ("$..price", &*heavy_body, &*heavy_ref)
            } else {
                ("$.items[*].price", &*light_body, &*light_ref)
            };
            // Odd threads write through a fault plan; even ones are clean.
            let plan = if heavy {
                FaultPlan::new(t as u64)
            } else {
                FaultPlan::new(t as u64).short_writes(16)
            };
            let resp = faulty_query(&addr, plan, &format!("s{t}"), &format!("t{t}"), query, body)
                .expect("request must complete with a full frame");
            match resp.code {
                200 => {
                    assert_eq!(
                        resp.body, *reference,
                        "completed frame under load diverged from serial run"
                    );
                    oks.fetch_add(1, Ordering::SeqCst);
                }
                429 => {
                    assert_eq!(resp.reason.as_deref(), Some("queue_full"));
                    assert!(resp.body.is_empty(), "shed frames carry no body");
                    sheds.fetch_add(1, Ordering::SeqCst);
                }
                408 => assert!(resp.body.is_empty(), "timeout frames carry no body"),
                other => panic!("unexpected status {other}: {:?}", resp.reason),
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    assert!(
        sheds.load(Ordering::SeqCst) > 0,
        "2x saturation must produce typed sheds"
    );
    assert!(
        oks.load(Ordering::SeqCst) > 0,
        "admitted requests must complete exactly"
    );
    token.cancel();
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.shed, sheds.load(Ordering::SeqCst) as u64);
}

/// The write-side mirror of the slow loris: a client that uploads its
/// query and then never drains the response. The server's guarded write
/// loop burns its bounded stall budget, closes the connection with the
/// typed `stalled_writes` reason, and frees the worker — it never pins
/// on the dead reader, and other connections keep getting exact answers.
#[test]
fn non_reading_client_exhausts_write_budget_and_is_cut_off() {
    let config = ServeConfig {
        write_timeout: Duration::from_millis(40),
        write_stall_budget: 2,
        metrics_endpoint: true,
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    // A response far larger than the loopback socket buffers, so the
    // server's writes genuinely block on the non-reading peer.
    let blob = {
        let filler = "x".repeat(4096);
        let mut out = Vec::new();
        for i in 0..3400 {
            out.extend_from_slice(format!("{{\"a\": \"{filler}{i}\"}}\n").as_bytes());
        }
        out
    };
    let mut stream = TcpStream::connect(&addr).unwrap();
    let payload = encode_request(Op::Query, "dead", "t", "$.a", Some(30_000), false, &blob);
    stream.write_all(&encode_frame(&payload)).unwrap();
    stream.flush().unwrap();
    // Never read. The server must cut this connection off once the
    // stall budget is spent, and say so in the scrape.
    let scrape = wait_for_scrape(&addr, |s| s.contains("serve_stalled_writes 1"));
    assert!(
        scrape.contains("serve_stalled_writes 1"),
        "write-stall close must be visible in the scrape:\n{scrape}"
    );
    // The worker is free again: a well-behaved client still gets exact
    // answers immediately.
    let body = ndjson(100);
    let reference = serial_reference("$.id", &body);
    let mut c = Client::connect_tcp(&addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    for i in 0..5 {
        let resp = c
            .query(&format!("ok{i}"), "t", "$.id", None, &body)
            .unwrap();
        assert_eq!(resp.code, 200);
        assert_eq!(resp.body, reference);
    }
    drop(stream);
    token.cancel();
    handle.join().unwrap().unwrap();
}
