//! End-to-end behavior of the persistent structural-index cache over
//! real sockets: the differential oracle (cached and uncached responses
//! byte-identical, for every kernel × both validation modes), staleness
//! detection when the corpus mutates underneath the server, and the
//! damage matrix — truncated, bit-flipped, torn, and version-skewed
//! index files must silently fall back to full classification, count the
//! fault, and heal, never changing a single response byte.

use std::path::{Path, PathBuf};
use std::time::Duration;

use jsonski::faults::{FaultPlan, FaultyFile};
use jsonski::index::index_path_for;
use jsonski::{EngineConfig, JsonSki, Kernel, ValidationMode};
use jsonski_serve::{Client, ServeConfig, Server};

const QUERY: &str = "$.items[*].price";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jsonski-idxcache-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("corpora")).unwrap();
    dir
}

fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"tag\": \"naïve—{i}\", \"items\": [{{\"price\": {}}}, {{\"price\": [{i}, {}]}}]}}\n",
                i * 3,
                i * 3 + 1
            )
            .as_bytes(),
        );
    }
    out
}

fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

fn start(
    dir: &Path,
    engine_config: EngineConfig,
) -> (
    String,
    jsonski::CancellationToken,
    std::thread::JoinHandle<std::io::Result<jsonski_serve::ServeSummary>>,
) {
    let config = ServeConfig {
        corpus_dir: Some(dir.join("corpora")),
        index_cache: Some(dir.join("indexes")),
        metrics_endpoint: true,
        engine_config,
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    (addr, token, handle)
}

fn scrape_counter(client: &mut Client, name: &str) -> u64 {
    let scrape = String::from_utf8(client.metrics(false).unwrap().body).unwrap();
    scrape
        .lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("counter {name} missing from scrape:\n{scrape}"))
}

/// Queries the stored corpus until a request is answered from the index
/// (the `index_hit` counter moves), returning that request's body.
/// Panics if no hit materializes — the cache must converge.
fn query_until_hit(client: &mut Client, corpus: &str) -> Vec<u8> {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let before = scrape_counter(client, "index_hit");
        let resp = client.query_corpus("h", "t", QUERY, corpus, None).unwrap();
        assert_eq!(resp.code, 200, "{:?}", resp.reason);
        if scrape_counter(client, "index_hit") > before {
            return resp.body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "index never produced a hit"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The differential oracle: for every supported kernel × both validation
/// modes, the inline (uncached) response, the cold corpus response
/// (index miss → full classification), and the warm corpus response
/// (index hit → prebuilt bitmaps) must be byte-identical to each other
/// and to a serial engine run.
#[test]
fn cached_responses_are_byte_identical_for_every_kernel_and_validation() {
    let body = ndjson(40);
    let reference = serial_reference(QUERY, &body);
    let mut kernels: Vec<Option<Kernel>> = vec![None];
    for name in ["scalar", "swar", "sse2", "avx2"] {
        if let Some(k) = Kernel::from_name(name) {
            if k.is_supported() {
                kernels.push(Some(k));
            }
        }
    }
    for kernel in kernels {
        for validation in [ValidationMode::Permissive, ValidationMode::Strict] {
            let tag = format!(
                "diff-{}-{validation:?}",
                kernel.map_or("auto", |k| k.name())
            );
            let dir = scratch(&tag);
            std::fs::write(dir.join("corpora/c.ndjson"), &body).unwrap();
            let engine_config = EngineConfig::builder()
                .kernel(kernel)
                .validation(validation)
                .build();
            let (addr, token, handle) = start(&dir, engine_config);
            let mut client = Client::connect_tcp(&addr).unwrap();
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let inline = client.query("i", "t", QUERY, None, &body).unwrap();
            assert_eq!(inline.code, 200, "{tag}: {:?}", inline.reason);
            assert_eq!(inline.body, reference, "{tag}: inline vs serial");
            let cold = client
                .query_corpus("c", "t", QUERY, "c.ndjson", None)
                .unwrap();
            assert_eq!(cold.code, 200, "{tag}: {:?}", cold.reason);
            assert_eq!(cold.body, reference, "{tag}: cold corpus vs serial");
            let warm = query_until_hit(&mut client, "c.ndjson");
            assert_eq!(warm, reference, "{tag}: indexed corpus vs serial");
            assert!(scrape_counter(&mut client, "index_skipped_classification_bytes") > 0);
            token.cancel();
            handle.join().unwrap().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Mutating the corpus file underneath a warm server must never serve
/// results for the old bytes: the resident and persisted indexes go
/// stale, the request falls back (correct against the *new* bytes), and
/// the cache heals onto the new content.
#[test]
fn mutated_corpus_is_detected_and_reindexed() {
    let dir = scratch("stale");
    let old_body = ndjson(20);
    std::fs::write(dir.join("corpora/c.ndjson"), &old_body).unwrap();
    let (addr, token, handle) = start(&dir, EngineConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(
        query_until_hit(&mut client, "c.ndjson"),
        serial_reference(QUERY, &old_body)
    );
    // Rewrite the corpus with different records (and a different length).
    let new_body = ndjson(31);
    std::fs::write(dir.join("corpora/c.ndjson"), &new_body).unwrap();
    let new_reference = serial_reference(QUERY, &new_body);
    let resp = client
        .query_corpus("m", "t", QUERY, "c.ndjson", None)
        .unwrap();
    assert_eq!(resp.code, 200, "{:?}", resp.reason);
    assert_eq!(
        resp.body, new_reference,
        "stale index must not leak old results"
    );
    assert!(scrape_counter(&mut client, "index_stale") >= 1);
    assert_eq!(query_until_hit(&mut client, "c.ndjson"), new_reference);
    token.cancel();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The damage matrix: every way an index file can be wrong on disk —
/// truncation at various byte counts, single-byte corruption, torn and
/// bit-rotted writes staged through [`FaultyFile`], version skew, and
/// outright garbage — must degrade to a byte-identical fallback response
/// with the corruption counted, then heal in the background.
#[test]
fn damaged_index_files_degrade_silently_and_heal() {
    let dir = scratch("damage");
    let body = ndjson(24);
    let reference = serial_reference(QUERY, &body);
    std::fs::write(dir.join("corpora/c.ndjson"), &body).unwrap();
    // Prime a valid index file, then stop the server so the next one
    // must read it from disk.
    let (addr, token, handle) = start(&dir, EngineConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    query_until_hit(&mut client, "c.ndjson");
    token.cancel();
    handle.join().unwrap().unwrap();
    let index_path = index_path_for(&dir.join("indexes"), "c.ndjson");
    let pristine = std::fs::read(&index_path).unwrap();
    assert!(pristine.len() > 64, "sanity: index file has substance");

    type Damage = Box<dyn Fn(&[u8]) -> Vec<u8>>;
    let damages: Vec<(&str, Damage)> = vec![
        ("truncate-prefix", Box::new(|b: &[u8]| b[..8].to_vec())),
        ("truncate-header", Box::new(|b: &[u8]| b[..40].to_vec())),
        (
            "truncate-tail",
            Box::new(|b: &[u8]| b[..b.len() - 1].to_vec()),
        ),
        (
            "bitflip-header",
            Box::new(|b: &[u8]| {
                let mut v = b.to_vec();
                v[12] ^= 0x01;
                v
            }),
        ),
        (
            "bitflip-body",
            Box::new(|b: &[u8]| {
                let mut v = b.to_vec();
                let mid = v.len() / 2;
                v[mid] ^= 0x80;
                v
            }),
        ),
        (
            "version-skew",
            Box::new(|b: &[u8]| {
                let mut v = b.to_vec();
                v[..8].copy_from_slice(b"JSKIDX9\n");
                v
            }),
        ),
        (
            "garbage",
            Box::new(|_: &[u8]| b"not an index at all".to_vec()),
        ),
        ("empty", Box::new(|_: &[u8]| Vec::new())),
    ];
    for (tag, damage) in &damages {
        std::fs::write(&index_path, damage(&pristine)).unwrap();
        let (addr, token, handle) = start(&dir, EngineConfig::default());
        let mut client = Client::connect_tcp(&addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let resp = client
            .query_corpus("d", "t", QUERY, "c.ndjson", None)
            .unwrap();
        assert_eq!(
            resp.code, 200,
            "{tag}: damaged index must not fail the request"
        );
        assert_eq!(
            resp.body, reference,
            "{tag}: damaged index must not change bytes"
        );
        assert_eq!(
            scrape_counter(&mut client, "index_corrupt_fallback"),
            1,
            "{tag}: the fault must be counted"
        );
        assert_eq!(
            query_until_hit(&mut client, "c.ndjson"),
            reference,
            "{tag}: heal"
        );
        token.cancel();
        handle.join().unwrap().unwrap();
    }

    // Torn and bit-rotted writes staged through the seeded FaultyFile:
    // the lying-disk version of the same story.
    for (tag, plan) in [
        (
            "faulty-torn",
            FaultPlan::new(7).truncate_at(pristine.len() as u64 / 3),
        ),
        (
            "faulty-bitrot",
            FaultPlan::new(8).corrupt_every(211).short_writes(31),
        ),
    ] {
        let mut f = FaultyFile::create(&index_path, plan).unwrap();
        std::io::Write::write_all(&mut f, &pristine).unwrap();
        f.persist().unwrap();
        assert_ne!(
            std::fs::read(&index_path).unwrap(),
            pristine,
            "{tag}: damage landed"
        );
        let (addr, token, handle) = start(&dir, EngineConfig::default());
        let mut client = Client::connect_tcp(&addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let resp = client
            .query_corpus("f", "t", QUERY, "c.ndjson", None)
            .unwrap();
        assert_eq!(resp.code, 200, "{tag}");
        assert_eq!(resp.body, reference, "{tag}");
        assert_eq!(
            scrape_counter(&mut client, "index_corrupt_fallback"),
            1,
            "{tag}"
        );
        assert_eq!(query_until_hit(&mut client, "c.ndjson"), reference, "{tag}");
        token.cancel();
        handle.join().unwrap().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unknown corpus names answer a typed 404, not a hang, 500, or empty
/// 200; a server without `--corpus-dir` answers the same for any name.
#[test]
fn unknown_corpora_answer_404() {
    let dir = scratch("notfound");
    let (addr, token, handle) = start(&dir, EngineConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for name in ["absent.ndjson", "../etc/passwd", ".."] {
        let resp = client.query_corpus("n", "t", QUERY, name, None).unwrap();
        assert_eq!(resp.code, 404, "{name}: {:?}", resp.reason);
        assert_eq!(resp.status, "not_found");
    }
    assert_eq!(scrape_counter(&mut client, "serve_corpus_not_found"), 3);
    token.cancel();
    handle.join().unwrap().unwrap();
    // No corpus dir at all: still a typed 404.
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let resp = client
        .query_corpus("n", "t", QUERY, "c.ndjson", None)
        .unwrap();
    assert_eq!(resp.code, 404);
    token.cancel();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
