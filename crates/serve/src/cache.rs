//! LRU cache of compiled queries.
//!
//! Compiling a JSONPath expression builds the bitset NFA and its per-state
//! fast-forward legality table; for a daemon serving a hot corpus the same
//! handful of queries recur, so the compilation cost should be paid once.
//! Entries are keyed by `(query text, config digest)` — the digest folds in
//! validation mode, forced kernel, and fast-forward group toggles via the
//! same [`jsonski::digest_parts`] hash the checkpoint format uses, so a
//! server restarted with `--strict` can never serve an automaton compiled
//! under permissive rules.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jsonski::{JsonSki, MemBudget, MemPermit, ParsePathError};

struct Entry {
    engine: Arc<JsonSki>,
    /// Monotonic last-use stamp; the entry with the smallest stamp is the
    /// least recently used.
    stamp: u64,
    /// Tracked-memory charge for this entry; released when the entry is
    /// evicted or the cache cleared. `None` when the cache is unbudgeted.
    _permit: Option<MemPermit>,
}

/// A bounded least-recently-used cache of compiled [`JsonSki`] engines.
///
/// Shared across worker threads behind a [`Mutex`]; the critical section
/// is a hash-map probe, so contention is negligible next to evaluation.
/// Eviction is an `O(len)` min-stamp scan — fine for the tens-of-entries
/// capacities a daemon uses.
pub struct QueryCache {
    entries: Mutex<HashMap<(String, u64), Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// When set, every resident entry carries a tracked-memory charge;
    /// an entry the budget refuses is served uncached instead of evicting
    /// request buffers to make room for itself.
    budget: Option<Arc<MemBudget>>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` compiled queries.
    /// A capacity of 0 disables caching (every lookup compiles).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            entries: Mutex::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            budget: None,
        }
    }

    /// Charges resident entries against `budget`.
    pub fn with_budget(mut self, budget: Arc<MemBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Approximate resident cost of a compiled query: the key text plus a
    /// flat allowance for the automaton and legality tables.
    fn entry_cost(query: &str) -> usize {
        query.len() + 1024
    }

    /// Returns the compiled engine for `query` under the configuration
    /// identified by `config_digest`, compiling (via `compile`) on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the `compile` closure's [`ParsePathError`]; parse
    /// failures are not cached (a retried bad query is cheap to re-reject).
    pub fn get_or_compile(
        &self,
        query: &str,
        config_digest: u64,
        compile: impl FnOnce(&str) -> Result<JsonSki, ParsePathError>,
    ) -> Result<Arc<JsonSki>, ParsePathError> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        if self.capacity > 0 {
            let mut entries = self.entries.lock().unwrap();
            if let Some(e) = entries.get_mut(&(query.to_string(), config_digest)) {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&e.engine));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside the lock: a slow parse must not serialize the
        // whole worker pool behind the cache mutex.
        let engine = Arc::new(compile(query)?);
        if self.capacity > 0 {
            // A budgeted cache only keeps entries the ledger admits; a
            // refused entry is served uncached (the caller's request is
            // never failed on behalf of the cache).
            let permit = match &self.budget {
                Some(b) => match b.try_reserve(None, Self::entry_cost(query)) {
                    Ok(p) => Some(p),
                    Err(_) => return Ok(engine),
                },
                None => None,
            };
            let mut entries = self.entries.lock().unwrap();
            if entries.len() >= self.capacity
                && !entries.contains_key(&(query.to_string(), config_digest))
            {
                if let Some(lru) = entries
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| k.clone())
                {
                    entries.remove(&lru);
                }
            }
            entries.insert(
                (query.to_string(), config_digest),
                Entry {
                    engine: Arc::clone(&engine),
                    stamp,
                    _permit: permit,
                },
            );
        }
        Ok(engine)
    }

    /// Evicts every resident entry (releasing its memory charge),
    /// returning how many were dropped. The memory-pressure relief hook.
    pub fn clear(&self) -> usize {
        let mut entries = self.entries.lock().unwrap();
        let n = entries.len();
        entries.clear();
        n
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (compilations) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of compiled queries currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_counting(n: &AtomicU64) -> impl Fn(&str) -> Result<JsonSki, ParsePathError> + '_ {
        move |q| {
            n.fetch_add(1, Ordering::Relaxed);
            JsonSki::compile(q)
        }
    }

    #[test]
    fn hits_skip_compilation() {
        let cache = QueryCache::new(8);
        let compiles = AtomicU64::new(0);
        for _ in 0..5 {
            cache
                .get_or_compile("$.a[*]", 1, compile_counting(&compiles))
                .unwrap();
        }
        assert_eq!(compiles.load(Ordering::Relaxed), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn config_digest_partitions_entries() {
        let cache = QueryCache::new(8);
        let compiles = AtomicU64::new(0);
        cache
            .get_or_compile("$.a", 1, compile_counting(&compiles))
            .unwrap();
        cache
            .get_or_compile("$.a", 2, compile_counting(&compiles))
            .unwrap();
        assert_eq!(compiles.load(Ordering::Relaxed), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let cache = QueryCache::new(2);
        let compiles = AtomicU64::new(0);
        cache
            .get_or_compile("$.a", 0, compile_counting(&compiles))
            .unwrap();
        cache
            .get_or_compile("$.b", 0, compile_counting(&compiles))
            .unwrap();
        // Touch $.a so $.b becomes the LRU entry.
        cache
            .get_or_compile("$.a", 0, compile_counting(&compiles))
            .unwrap();
        cache
            .get_or_compile("$.c", 0, compile_counting(&compiles))
            .unwrap();
        assert_eq!(cache.len(), 2);
        // $.a survives (hit), $.b was evicted (recompiles).
        cache
            .get_or_compile("$.a", 0, compile_counting(&compiles))
            .unwrap();
        let before = compiles.load(Ordering::Relaxed);
        cache
            .get_or_compile("$.b", 0, compile_counting(&compiles))
            .unwrap();
        assert_eq!(compiles.load(Ordering::Relaxed), before + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        let compiles = AtomicU64::new(0);
        for _ in 0..3 {
            cache
                .get_or_compile("$.a", 0, compile_counting(&compiles))
                .unwrap();
        }
        assert_eq!(compiles.load(Ordering::Relaxed), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn budgeted_cache_charges_and_releases() {
        let budget = MemBudget::new(4096);
        let cache = QueryCache::new(8).with_budget(Arc::clone(&budget));
        cache.get_or_compile("$.a", 0, JsonSki::compile).unwrap();
        cache.get_or_compile("$.b", 0, JsonSki::compile).unwrap();
        assert!(budget.used() > 0);
        assert_eq!(cache.clear(), 2);
        assert_eq!(budget.used(), 0, "clear releases every charge");
    }

    #[test]
    fn exhausted_budget_serves_uncached() {
        let budget = MemBudget::new(64); // smaller than one entry's cost
        let cache = QueryCache::new(8).with_budget(Arc::clone(&budget));
        // Compilation still succeeds; the entry just isn't kept.
        cache.get_or_compile("$.a", 0, JsonSki::compile).unwrap();
        assert!(cache.is_empty());
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn parse_errors_propagate_and_are_not_cached() {
        let cache = QueryCache::new(4);
        assert!(cache.get_or_compile("$.[", 0, JsonSki::compile).is_err());
        assert!(cache.is_empty());
    }
}
