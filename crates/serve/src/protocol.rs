//! The wire protocol: length-prefixed JSONL frames.
//!
//! A frame is a 4-byte big-endian payload length followed by exactly that
//! many payload bytes. The payload is one JSON *header line* (terminated by
//! the first `\n`) followed by a raw *body*:
//!
//! ```text
//! [u32 len] {"op":"query","id":"7","tenant":"t1","query":"$.a"}\n{"a":1}\n{"a":2}\n
//! ```
//!
//! Keeping the body raw (instead of escaping it into a JSON string) means
//! the per-request cost is dominated by the engine's parse of the body —
//! the bar set by the "Parsing Gigabytes of JSON per Second" line of work —
//! not by protocol re-encoding. The header is parsed with the engine's own
//! RFC 6901 [`jsonski::get`] extractor, so the daemon dogfoods the library
//! it serves.
//!
//! Responses use the same shape: a JSON header line carrying an HTTP-style
//! status code, then the body (match lines for `ok`, scrape text for
//! `metrics`). Every frame is written with a single buffered `write_all`,
//! so a client never observes a truncated or interleaved frame: either the
//! whole frame arrives or the connection drops.
//!
//! # Chunked streaming responses
//!
//! A single-frame response is the wire default; a client that sets
//! `"stream": true` in its request header opts into *chunked* delivery,
//! which bounds the server's response buffer by `--chunk-bytes` instead of
//! the full match set. A streamed 200 is a sequence of frames:
//!
//! ```text
//! response        = single-frame | stream-header chunk* trailer
//! stream-header   = frame( {"code":200,"status":"ok","stream":true,...}\n )
//! chunk           = frame( 'C' raw-body-bytes )
//! trailer         = frame( 'T' {"code":...,"status":...,"matches":...,
//!                               "checksum":...}\n )
//! ```
//!
//! The trailer carries the *final* status (a mid-stream deadline or
//! evaluation failure surfaces there, exactly as it would in a single
//! frame) and an FNV-1a checksum over the concatenated chunk bytes; the
//! client verifies it on reassembly, so truncation or corruption is a
//! typed error, never a silently short body. Error and empty responses
//! stay single-frame even for streaming clients.

use std::io::{Read, Write};

/// Frame length prefix size in bytes.
pub const LEN_PREFIX: usize = 4;

/// Default cap on one frame's payload (16 MiB). A frame is buffered in full
/// before evaluation, so the cap bounds per-connection memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// First payload byte of a stream body-chunk frame.
pub const CHUNK_TAG: u8 = b'C';

/// First payload byte of a stream trailer frame.
pub const TRAILER_TAG: u8 = b'T';

/// Incremental FNV-1a 64 checksum over a streamed response body. Matches
/// [`jsonski::fingerprint`] over the concatenated bytes, so a trailer
/// checksum can be verified chunk-by-chunk on either side of the wire
/// without buffering the body twice.
#[derive(Clone, Copy, Debug)]
pub struct BodyChecksum(u64);

impl Default for BodyChecksum {
    fn default() -> Self {
        Self::new()
    }
}

impl BodyChecksum {
    /// A checksum over zero bytes so far.
    pub fn new() -> Self {
        BodyChecksum(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Operation requested by a frame header's `"op"` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Evaluate `"query"` over the body's NDJSON records (the default).
    Query,
    /// Return the server's metrics registry as a scrape body.
    Metrics,
    /// Liveness probe; echoes `id` with an empty body.
    Ping,
}

/// HTTP-style response status, serialized as `"code"`/`"status"` in the
/// response header line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// 200 — the query ran; the body holds its match lines.
    Ok,
    /// 400 — the frame or header could not be understood.
    BadRequest,
    /// 404 — the request named a stored corpus the server does not have.
    NotFound,
    /// 408 — the request exceeded its deadline; evaluation was cancelled
    /// at a record boundary and any partial output discarded.
    Timeout,
    /// 422 — the body failed evaluation under fail-fast.
    EvalFailed,
    /// 429 — admission control shed the request (queue pressure or
    /// per-tenant quota); retry later.
    Shed,
    /// 500 — evaluation panicked; the worker survived, the request did not.
    Panic,
    /// 503 — the server is draining after a shutdown signal and no longer
    /// accepts new work.
    Draining,
}

impl Status {
    /// The numeric code carried on the wire.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::Timeout => 408,
            Status::EvalFailed => 422,
            Status::Shed => 429,
            Status::Panic => 500,
            Status::Draining => 503,
        }
    }

    /// The symbolic name carried on the wire.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadRequest => "bad_request",
            Status::NotFound => "not_found",
            Status::Timeout => "timeout",
            Status::EvalFailed => "eval_failed",
            Status::Shed => "shed",
            Status::Panic => "panic",
            Status::Draining => "draining",
        }
    }
}

/// Why admission control rejected a request (the `"reason"` field of a
/// [`Status::Shed`] response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded request queue is at its watermark.
    QueueFull,
    /// The tenant already has its quota of requests in flight.
    TenantQuota,
    /// The request's buffers would exceed the memory budget even after
    /// eviction and (where eligible) forced streaming.
    Memory,
}

impl ShedReason {
    /// The symbolic name carried on the wire.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::TenantQuota => "tenant_quota",
            ShedReason::Memory => "memory",
        }
    }
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Requested operation.
    pub op: Op,
    /// The client's `"id"` value, kept as its raw JSON span and echoed
    /// verbatim in the response (so string and numeric ids both work).
    pub id: Vec<u8>,
    /// Tenant name for quota accounting (`"anon"` when absent).
    pub tenant: String,
    /// JSONPath expression (required when `op` is [`Op::Query`]).
    pub query: String,
    /// Name of a server-stored corpus to evaluate over instead of the
    /// request body (empty when the body carries the records). Stored
    /// corpora are where the persistent structural-index cache applies.
    pub corpus: String,
    /// Optional per-request deadline in milliseconds; the server clamps it
    /// to its own maximum.
    pub deadline_ms: Option<u64>,
    /// `"format"` for [`Op::Metrics`]: `true` renders JSON, `false` text.
    pub metrics_json: bool,
    /// Whether the client opted into chunked streaming delivery for this
    /// response (the `"stream"` header field; single-frame is the default).
    pub stream: bool,
    /// The raw NDJSON body (bytes after the header line).
    pub body: Vec<u8>,
}

/// A protocol-level failure while reading or parsing a frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the connection in the middle of a frame.
    TruncatedFrame {
        /// Bytes of the frame (prefix included) that did arrive.
        got: usize,
        /// Bytes the frame declared.
        expected: usize,
    },
    /// The declared payload length exceeds the configured cap.
    FrameTooLarge {
        /// The declared length.
        len: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The header line is missing, not valid JSON, or missing a required
    /// field.
    BadHeader(String),
    /// The peer stalled mid-frame past the read-timeout retry budget
    /// (slow-loris defense).
    Stalled,
    /// A streamed response's trailer checksum did not match the
    /// reassembled chunk bytes: the body was corrupted or truncated in
    /// flight and must not be trusted.
    ChecksumMismatch {
        /// Checksum the trailer declared.
        expected: u64,
        /// Checksum of the bytes that actually arrived.
        got: u64,
    },
    /// A frame arrived that is not valid at this point in the stream
    /// grammar (e.g. a second stream header, or EOF between chunks).
    BadStream(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::TruncatedFrame { got, expected } => {
                write!(f, "connection closed mid-frame ({got}/{expected} bytes)")
            }
            ProtocolError::FrameTooLarge { len, limit } => {
                write!(f, "frame of {len} bytes exceeds the {limit}-byte cap")
            }
            ProtocolError::BadHeader(m) => write!(f, "bad request header: {m}"),
            ProtocolError::Stalled => {
                write!(f, "peer stalled mid-frame past the read-timeout budget")
            }
            ProtocolError::ChecksumMismatch { expected, got } => write!(
                f,
                "stream checksum mismatch: trailer declared {expected:#018x}, body hashed to {got:#018x}"
            ),
            ProtocolError::BadStream(m) => write!(f, "bad stream frame: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Encodes one frame (length prefix + payload) into a fresh buffer.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(LEN_PREFIX + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Builds a request payload (header line + body) from its parts. Helper
/// for clients; the server only decodes. Requests single-frame delivery;
/// see [`encode_request_opts`] for the streaming opt-in.
pub fn encode_request(
    op: Op,
    id: &str,
    tenant: &str,
    query: &str,
    deadline_ms: Option<u64>,
    metrics_json: bool,
    body: &[u8],
) -> Vec<u8> {
    encode_request_opts(
        op,
        id,
        tenant,
        query,
        deadline_ms,
        metrics_json,
        false,
        body,
    )
}

/// [`encode_request`] plus the `"stream"` header field: when `stream` is
/// true the server may deliver a 200 body as chunk frames + trailer.
#[allow(clippy::too_many_arguments)]
pub fn encode_request_opts(
    op: Op,
    id: &str,
    tenant: &str,
    query: &str,
    deadline_ms: Option<u64>,
    metrics_json: bool,
    stream: bool,
    body: &[u8],
) -> Vec<u8> {
    let mut header = String::from("{");
    let op_name = match op {
        Op::Query => "query",
        Op::Metrics => "metrics",
        Op::Ping => "ping",
    };
    header.push_str(&format!("\"op\": \"{op_name}\""));
    header.push_str(&format!(", \"id\": \"{}\"", json_escape(id)));
    header.push_str(&format!(", \"tenant\": \"{}\"", json_escape(tenant)));
    if !query.is_empty() {
        header.push_str(&format!(", \"query\": \"{}\"", json_escape(query)));
    }
    if let Some(ms) = deadline_ms {
        header.push_str(&format!(", \"deadline_ms\": {ms}"));
    }
    if metrics_json {
        header.push_str(", \"format\": \"json\"");
    }
    if stream {
        header.push_str(", \"stream\": true");
    }
    header.push('}');
    let mut payload = header.into_bytes();
    payload.push(b'\n');
    payload.extend_from_slice(body);
    payload
}

/// Builds a query-request payload that evaluates over a *server-stored*
/// corpus: the `"corpus"` header field names the file, the body is empty.
/// Helper for clients; the server only decodes.
pub fn encode_corpus_request(
    id: &str,
    tenant: &str,
    query: &str,
    corpus: &str,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    encode_corpus_request_opts(id, tenant, query, corpus, deadline_ms, false)
}

/// [`encode_corpus_request`] plus the `"stream"` header field.
pub fn encode_corpus_request_opts(
    id: &str,
    tenant: &str,
    query: &str,
    corpus: &str,
    deadline_ms: Option<u64>,
    stream: bool,
) -> Vec<u8> {
    let mut header = String::from("{\"op\": \"query\"");
    header.push_str(&format!(", \"id\": \"{}\"", json_escape(id)));
    header.push_str(&format!(", \"tenant\": \"{}\"", json_escape(tenant)));
    header.push_str(&format!(", \"query\": \"{}\"", json_escape(query)));
    header.push_str(&format!(", \"corpus\": \"{}\"", json_escape(corpus)));
    if let Some(ms) = deadline_ms {
        header.push_str(&format!(", \"deadline_ms\": {ms}"));
    }
    if stream {
        header.push_str(", \"stream\": true");
    }
    header.push('}');
    let mut payload = header.into_bytes();
    payload.push(b'\n');
    payload
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a request payload: header line via the engine's own JSON-pointer
/// extractor, body as the raw remainder.
///
/// # Errors
///
/// [`ProtocolError::BadHeader`] when the header line is absent, is not a
/// JSON object, or lacks a required field.
pub fn parse_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let nl = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ProtocolError::BadHeader("missing header line terminator".into()))?;
    let (header, body) = (&payload[..nl], &payload[nl + 1..]);
    let field = |ptr: &str| -> Result<Option<jsonski::LazyValue<'_>>, ProtocolError> {
        jsonski::get(header, ptr).map_err(|e| ProtocolError::BadHeader(e.to_string()))
    };
    let op = match field("/op")? {
        None => Op::Query,
        Some(v) => match v.as_str().ok().as_deref() {
            Some("query") => Op::Query,
            Some("metrics") => Op::Metrics,
            Some("ping") => Op::Ping,
            _ => {
                return Err(ProtocolError::BadHeader(format!(
                    "unknown op: {}",
                    String::from_utf8_lossy(v.as_raw())
                )))
            }
        },
    };
    let id = field("/id")?
        .map(|v| v.as_raw().to_vec())
        .unwrap_or_default();
    let tenant = match field("/tenant")? {
        Some(v) => v
            .as_str()
            .map_err(|_| ProtocolError::BadHeader("tenant must be a string".into()))?
            .into_owned(),
        None => "anon".to_string(),
    };
    let query = match field("/query")? {
        Some(v) => v
            .as_str()
            .map_err(|_| ProtocolError::BadHeader("query must be a string".into()))?
            .into_owned(),
        None => String::new(),
    };
    let corpus = match field("/corpus")? {
        Some(v) => v
            .as_str()
            .map_err(|_| ProtocolError::BadHeader("corpus must be a string".into()))?
            .into_owned(),
        None => String::new(),
    };
    if op == Op::Query && query.is_empty() {
        return Err(ProtocolError::BadHeader(
            "op \"query\" requires a \"query\" field".into(),
        ));
    }
    let deadline_ms = match field("/deadline_ms")? {
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            ProtocolError::BadHeader("deadline_ms must be a non-negative integer".into())
        })?),
        None => None,
    };
    let metrics_json = matches!(
        field("/format")?.and_then(|v| v.as_str().ok().map(|s| s.into_owned())),
        Some(ref s) if s == "json"
    );
    let stream = field("/stream")?.and_then(|v| v.as_bool()).unwrap_or(false);
    Ok(Request {
        op,
        id,
        tenant,
        query,
        corpus,
        deadline_ms,
        metrics_json,
        stream,
        body: body.to_vec(),
    })
}

/// A parsed response frame (client side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP-style status code.
    pub code: u16,
    /// Symbolic status name.
    pub status: String,
    /// The request's `"id"` raw span, echoed.
    pub id: Vec<u8>,
    /// Matches delivered (query responses).
    pub matches: u64,
    /// Records evaluated (query responses).
    pub records: u64,
    /// Records skipped under the server's skip-malformed policy.
    pub skipped: u64,
    /// Shed/error reason, when present.
    pub reason: Option<String>,
    /// True on a stream *header* frame (more frames follow), and kept
    /// true on the client's reassembled response so callers can tell the
    /// delivery mode apart.
    pub stream: bool,
    /// Response body (match lines, scrape text, or empty).
    pub body: Vec<u8>,
}

impl Response {
    /// Whether this is a 200.
    pub fn is_ok(&self) -> bool {
        self.code == 200
    }
}

/// Builds a response payload (header line + body).
#[allow(clippy::too_many_arguments)]
pub fn encode_response(
    status: Status,
    id: &[u8],
    matches: u64,
    records: u64,
    skipped: u64,
    reason: Option<&str>,
    body: &[u8],
) -> Vec<u8> {
    let mut header = format!(
        "{{\"code\": {}, \"status\": \"{}\"",
        status.code(),
        status.name()
    );
    if !id.is_empty() {
        header.push_str(", \"id\": ");
        header.push_str(&String::from_utf8_lossy(id));
    }
    header.push_str(&format!(
        ", \"matches\": {matches}, \"records\": {records}, \"skipped\": {skipped}"
    ));
    if let Some(r) = reason {
        header.push_str(&format!(", \"reason\": \"{}\"", json_escape(r)));
    }
    header.push('}');
    let mut payload = header.into_bytes();
    payload.push(b'\n');
    payload.extend_from_slice(body);
    payload
}

/// Parses a response payload (client side).
///
/// # Errors
///
/// [`ProtocolError::BadHeader`] when the header line is malformed.
pub fn parse_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let nl = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ProtocolError::BadHeader("missing header line terminator".into()))?;
    let (header, body) = (&payload[..nl], &payload[nl + 1..]);
    let field = |ptr: &str| -> Result<Option<jsonski::LazyValue<'_>>, ProtocolError> {
        jsonski::get(header, ptr).map_err(|e| ProtocolError::BadHeader(e.to_string()))
    };
    let code = field("/code")?
        .and_then(|v| v.as_u64())
        .ok_or_else(|| ProtocolError::BadHeader("missing code".into()))? as u16;
    let status = field("/status")?
        .and_then(|v| v.as_str().ok().map(|s| s.into_owned()))
        .ok_or_else(|| ProtocolError::BadHeader("missing status".into()))?;
    let id = field("/id")?
        .map(|v| v.as_raw().to_vec())
        .unwrap_or_default();
    let num = |ptr: &str| -> Result<u64, ProtocolError> {
        Ok(field(ptr)?.and_then(|v| v.as_u64()).unwrap_or(0))
    };
    let reason = field("/reason")?.and_then(|v| v.as_str().ok().map(|s| s.into_owned()));
    let stream = field("/stream")?.and_then(|v| v.as_bool()).unwrap_or(false);
    Ok(Response {
        code,
        status,
        id,
        matches: num("/matches")?,
        records: num("/records")?,
        skipped: num("/skipped")?,
        reason,
        stream,
        body: body.to_vec(),
    })
}

/// Builds a stream *header* payload: a 200 header line with
/// `"stream": true` and no body, announcing that chunk frames follow.
pub fn encode_stream_header(id: &[u8]) -> Vec<u8> {
    let mut header = String::from("{\"code\": 200, \"status\": \"ok\", \"stream\": true");
    if !id.is_empty() {
        header.push_str(", \"id\": ");
        header.push_str(&String::from_utf8_lossy(id));
    }
    header.push('}');
    let mut payload = header.into_bytes();
    payload.push(b'\n');
    payload
}

/// Builds a stream body-chunk payload: the [`CHUNK_TAG`] byte followed by
/// raw body bytes.
pub fn encode_stream_chunk(bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + bytes.len());
    payload.push(CHUNK_TAG);
    payload.extend_from_slice(bytes);
    payload
}

/// Builds a stream *trailer* payload: the [`TRAILER_TAG`] byte followed
/// by a header line carrying the final status, counters, and the FNV-1a
/// checksum over all chunk bytes.
#[allow(clippy::too_many_arguments)]
pub fn encode_stream_trailer(
    status: Status,
    id: &[u8],
    matches: u64,
    records: u64,
    skipped: u64,
    reason: Option<&str>,
    checksum: u64,
) -> Vec<u8> {
    let mut header = format!(
        "{{\"code\": {}, \"status\": \"{}\"",
        status.code(),
        status.name()
    );
    if !id.is_empty() {
        header.push_str(", \"id\": ");
        header.push_str(&String::from_utf8_lossy(id));
    }
    header.push_str(&format!(
        ", \"matches\": {matches}, \"records\": {records}, \"skipped\": {skipped}"
    ));
    if let Some(r) = reason {
        header.push_str(&format!(", \"reason\": \"{}\"", json_escape(r)));
    }
    header.push_str(&format!(", \"checksum\": {checksum}}}"));
    let mut payload = Vec::with_capacity(1 + header.len() + 1);
    payload.push(TRAILER_TAG);
    payload.extend_from_slice(header.as_bytes());
    payload.push(b'\n');
    payload
}

/// A frame decoded while a stream is in progress: either a body chunk or
/// the trailer that ends the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamFrame {
    /// Raw body bytes to append.
    Chunk(Vec<u8>),
    /// The final status plus the declared body checksum. The embedded
    /// [`Response`] carries empty `body` and `stream: false`; the client
    /// fills both in on reassembly.
    Trailer {
        /// Final response header fields.
        response: Response,
        /// Declared FNV-1a checksum over all chunk bytes.
        checksum: u64,
    },
}

/// Decodes a frame received *after* a stream header: a chunk or the
/// trailer, per the stream grammar.
///
/// # Errors
///
/// [`ProtocolError::BadStream`] when the payload is empty or tagged with
/// neither [`CHUNK_TAG`] nor [`TRAILER_TAG`];
/// [`ProtocolError::BadHeader`] when a trailer's header line is
/// malformed.
pub fn parse_stream_frame(payload: &[u8]) -> Result<StreamFrame, ProtocolError> {
    match payload.first() {
        Some(&CHUNK_TAG) => Ok(StreamFrame::Chunk(payload[1..].to_vec())),
        Some(&TRAILER_TAG) => {
            let rest = &payload[1..];
            let response = parse_response(rest)?;
            if !response.body.is_empty() {
                return Err(ProtocolError::BadStream(
                    "trailer frame carries a body".into(),
                ));
            }
            let nl = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
            let checksum = jsonski::get(&rest[..nl], "/checksum")
                .map_err(|e| ProtocolError::BadHeader(e.to_string()))?
                .and_then(|v| v.as_u64())
                .ok_or_else(|| ProtocolError::BadStream("trailer missing checksum".into()))?;
            Ok(StreamFrame::Trailer { response, checksum })
        }
        Some(tag) => Err(ProtocolError::BadStream(format!(
            "unknown stream frame tag {tag:#04x}"
        ))),
        None => Err(ProtocolError::BadStream("empty stream frame".into())),
    }
}

/// Writes one frame with a single `write_all`: the peer sees the whole
/// frame or (on transport failure) a dropped connection — never a prefix
/// followed by unrelated bytes.
///
/// # Errors
///
/// The transport's write error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Reads exactly one frame payload, given a closure that reads some bytes
/// (so callers control timeout/retry policy). Returns `Ok(None)` on a
/// clean EOF *before* the first prefix byte.
///
/// # Errors
///
/// [`ProtocolError::TruncatedFrame`] on EOF mid-frame,
/// [`ProtocolError::FrameTooLarge`] when the prefix exceeds
/// `max_frame_bytes`, or the transport's error.
pub fn read_frame<R: Read>(
    r: &mut R,
    max_frame_bytes: usize,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0usize;
    while got < LEN_PREFIX {
        let n = match r.read(&mut prefix[got..]) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            other => other?,
        };
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(ProtocolError::TruncatedFrame {
                got,
                expected: LEN_PREFIX,
            });
        }
        got += n;
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_frame_bytes {
        return Err(ProtocolError::FrameTooLarge {
            len,
            limit: max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        let n = match r.read(&mut payload[got..]) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            other => other?,
        };
        if n == 0 {
            return Err(ProtocolError::TruncatedFrame {
                got: LEN_PREFIX + got,
                expected: LEN_PREFIX + len,
            });
        }
        got += n;
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let payload = encode_request(
            Op::Query,
            "req-1",
            "tenant-a",
            "$.a[*]",
            Some(250),
            false,
            b"{\"a\": [1, 2]}\n",
        );
        let req = parse_request(&payload).unwrap();
        assert_eq!(req.op, Op::Query);
        assert_eq!(req.id, b"\"req-1\"");
        assert_eq!(req.tenant, "tenant-a");
        assert_eq!(req.query, "$.a[*]");
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.body, b"{\"a\": [1, 2]}\n");
    }

    #[test]
    fn response_roundtrip() {
        let payload = encode_response(Status::Ok, b"\"id7\"", 3, 2, 1, None, b"1\n2\n3\n");
        let resp = parse_response(&payload).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.id, b"\"id7\"");
        assert_eq!((resp.matches, resp.records, resp.skipped), (3, 2, 1));
        assert_eq!(resp.body, b"1\n2\n3\n");
        let shed = encode_response(Status::Shed, b"", 0, 0, 0, Some("queue_full"), b"");
        let resp = parse_response(&shed).unwrap();
        assert_eq!(resp.code, 429);
        assert_eq!(resp.reason.as_deref(), Some("queue_full"));
    }

    #[test]
    fn corpus_requests_roundtrip() {
        let payload = encode_corpus_request("req-2", "tenant-a", "$.a[*]", "events.ndjson", None);
        let req = parse_request(&payload).unwrap();
        assert_eq!(req.op, Op::Query);
        assert_eq!(req.corpus, "events.ndjson");
        assert!(req.body.is_empty());
        // A body-borne query has no corpus.
        let plain = encode_request(Op::Query, "x", "t", "$.a", None, false, b"{}\n");
        assert!(parse_request(&plain).unwrap().corpus.is_empty());
    }

    #[test]
    fn numeric_ids_echo_verbatim() {
        let mut payload = b"{\"op\": \"ping\", \"id\": 42}".to_vec();
        payload.push(b'\n');
        let req = parse_request(&payload).unwrap();
        assert_eq!(req.op, Op::Ping);
        assert_eq!(req.id, b"42");
        let out = encode_response(Status::Ok, &req.id, 0, 0, 0, None, b"");
        let resp = parse_response(&out).unwrap();
        assert_eq!(resp.id, b"42");
    }

    #[test]
    fn frame_roundtrip_over_a_pipe() {
        let payload = encode_request(Op::Ping, "x", "t", "", None, false, b"");
        let framed = encode_frame(&payload);
        let mut cursor = &framed[..];
        let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(got, payload);
        // Clean EOF before any bytes: end of stream, not an error.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty, 64).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed_errors() {
        let framed = encode_frame(b"hello world");
        let mut cut = &framed[..7];
        assert!(matches!(
            read_frame(&mut cut, 1024),
            Err(ProtocolError::TruncatedFrame { .. })
        ));
        let mut cursor = &framed[..];
        assert!(matches!(
            read_frame(&mut cursor, 4),
            Err(ProtocolError::FrameTooLarge { len: 11, limit: 4 })
        ));
    }

    #[test]
    fn bad_headers_are_rejected() {
        assert!(matches!(
            parse_request(b"no newline"),
            Err(ProtocolError::BadHeader(_))
        ));
        assert!(matches!(
            parse_request(b"{\"op\": \"nope\"}\n"),
            Err(ProtocolError::BadHeader(_))
        ));
        // op=query without a query field.
        assert!(matches!(
            parse_request(b"{\"op\": \"query\"}\n"),
            Err(ProtocolError::BadHeader(_))
        ));
        // Default op is query, so a bare header also needs a query.
        assert!(matches!(
            parse_request(b"{}\n"),
            Err(ProtocolError::BadHeader(_))
        ));
    }

    #[test]
    fn stream_opt_in_roundtrips() {
        let payload = encode_request_opts(Op::Query, "r", "t", "$.a", None, false, true, b"{}\n");
        assert!(parse_request(&payload).unwrap().stream);
        let payload = encode_corpus_request_opts("r", "t", "$.a", "c.ndjson", Some(50), true);
        let req = parse_request(&payload).unwrap();
        assert!(req.stream);
        assert_eq!(req.corpus, "c.ndjson");
        // Default stays single-frame.
        let plain = encode_request(Op::Query, "r", "t", "$.a", None, false, b"{}\n");
        assert!(!parse_request(&plain).unwrap().stream);
    }

    #[test]
    fn stream_frames_roundtrip() {
        let header = encode_stream_header(b"\"id9\"");
        let resp = parse_response(&header).unwrap();
        assert!(resp.stream && resp.is_ok());
        assert_eq!(resp.id, b"\"id9\"");

        let chunk = encode_stream_chunk(b"1\n2\n");
        match parse_stream_frame(&chunk).unwrap() {
            StreamFrame::Chunk(bytes) => assert_eq!(bytes, b"1\n2\n"),
            other => panic!("expected chunk, got {other:?}"),
        }

        let mut sum = BodyChecksum::new();
        sum.update(b"1\n");
        sum.update(b"2\n");
        // Incremental checksum equals the one-shot fingerprint.
        assert_eq!(sum.finish(), jsonski::fingerprint(b"1\n2\n"));

        let trailer = encode_stream_trailer(Status::Ok, b"\"id9\"", 2, 1, 0, None, sum.finish());
        match parse_stream_frame(&trailer).unwrap() {
            StreamFrame::Trailer { response, checksum } => {
                assert!(response.is_ok());
                assert_eq!((response.matches, response.records), (2, 1));
                assert_eq!(checksum, sum.finish());
            }
            other => panic!("expected trailer, got {other:?}"),
        }

        // A mid-stream failure surfaces in the trailer's status.
        let failed = encode_stream_trailer(Status::Timeout, b"", 0, 0, 0, Some("deadline"), 0);
        match parse_stream_frame(&failed).unwrap() {
            StreamFrame::Trailer { response, .. } => {
                assert_eq!(response.code, 408);
                assert_eq!(response.reason.as_deref(), Some("deadline"));
            }
            other => panic!("expected trailer, got {other:?}"),
        }
    }

    #[test]
    fn bad_stream_frames_are_typed_errors() {
        assert!(matches!(
            parse_stream_frame(b""),
            Err(ProtocolError::BadStream(_))
        ));
        assert!(matches!(
            parse_stream_frame(b"X..."),
            Err(ProtocolError::BadStream(_))
        ));
        // A trailer with a mangled header line fails as a header error.
        assert!(parse_stream_frame(b"Tnot-json\n").is_err());
        // A trailer without a checksum is a stream violation.
        assert!(matches!(
            parse_stream_frame(b"T{\"code\": 200, \"status\": \"ok\"}\n"),
            Err(ProtocolError::BadStream(_))
        ));
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let evil = "a\"b\\c\nd\te\u{1}";
        let payload = encode_request(Op::Query, evil, evil, "$.a", None, false, b"");
        let req = parse_request(&payload).unwrap();
        assert_eq!(req.tenant, evil);
    }
}
