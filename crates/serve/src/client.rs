//! A minimal blocking client for the serve protocol.
//!
//! Shared by the test suites, the CLI drain smoke test, and the
//! `serve_guard` bench — one frame out, one frame in, fully typed. Not a
//! connection pool; open one [`Client`] per thread.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::protocol::{
    encode_frame, encode_request, parse_response, read_frame, Op, ProtocolError, Response,
    DEFAULT_MAX_FRAME_BYTES,
};

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking serve-protocol client over TCP or a unix socket.
pub struct Client {
    transport: Transport,
    /// Client-side cap on response payloads.
    pub max_frame_bytes: usize,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// The socket `connect` failure.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            transport: Transport::Tcp(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Connects over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// The socket `connect` failure.
    #[cfg(unix)]
    pub fn connect_unix(path: &str) -> std::io::Result<Client> {
        Ok(Client {
            transport: Transport::Unix(UnixStream::connect(path)?),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sets an OS-level read timeout for responses.
    ///
    /// # Errors
    ///
    /// The socket option failure.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> std::io::Result<()> {
        match &self.transport {
            Transport::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sends a raw request payload and reads one response frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed response frame; a server that
    /// closes the connection mid-response surfaces as
    /// [`ProtocolError::TruncatedFrame`].
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Response, ProtocolError> {
        self.transport.write_all(&encode_frame(payload))?;
        self.transport.flush()?;
        let frame = read_frame(&mut self.transport, self.max_frame_bytes)?.ok_or(
            ProtocolError::TruncatedFrame {
                got: 0,
                expected: crate::protocol::LEN_PREFIX,
            },
        )?;
        parse_response(&frame)
    }

    /// Evaluates `query` over an NDJSON `body`.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn query(
        &mut self,
        id: &str,
        tenant: &str,
        query: &str,
        deadline_ms: Option<u64>,
        body: &[u8],
    ) -> Result<Response, ProtocolError> {
        let payload = encode_request(Op::Query, id, tenant, query, deadline_ms, false, body);
        self.request_raw(&payload)
    }

    /// Evaluates `query` over a *server-stored* corpus named `corpus`
    /// (requires the server to run with `--corpus-dir`; repeat queries
    /// are accelerated by its structural-index cache).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn query_corpus(
        &mut self,
        id: &str,
        tenant: &str,
        query: &str,
        corpus: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ProtocolError> {
        let payload =
            crate::protocol::encode_corpus_request(id, tenant, query, corpus, deadline_ms);
        self.request_raw(&payload)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn ping(&mut self) -> Result<Response, ProtocolError> {
        let payload = encode_request(Op::Ping, "ping", "anon", "", None, false, b"");
        self.request_raw(&payload)
    }

    /// Fetches the metrics scrape (`json` selects the JSON rendering).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn metrics(&mut self, json: bool) -> Result<Response, ProtocolError> {
        let payload = encode_request(Op::Metrics, "metrics", "anon", "", None, json, b"");
        self.request_raw(&payload)
    }
}
