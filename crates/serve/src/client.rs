//! A minimal blocking client for the serve protocol.
//!
//! Shared by the test suites, the CLI drain smoke test, and the
//! `serve_guard` bench — one request out, one (possibly chunked)
//! response in, fully typed. Not a connection pool; open one [`Client`]
//! per thread.
//!
//! Connections carry a default read timeout (see
//! [`DEFAULT_READ_TIMEOUT`]) so a wedged or partitioned server surfaces
//! as [`ClientError::Timeout`] instead of hanging the caller forever;
//! pass `None` to [`Client::set_read_timeout`] to opt out.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::protocol::{
    encode_frame, parse_response, parse_stream_frame, read_frame, BodyChecksum, Op, ProtocolError,
    Response, StreamFrame, DEFAULT_MAX_FRAME_BYTES,
};

/// Read timeout applied by [`Client::connect_tcp`] /
/// [`Client::connect_unix`]. Generous next to any sane request deadline,
/// tight enough that a dead server is a bounded wait.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A client-side failure: the read timeout elapsed, or anything else.
#[derive(Debug)]
pub enum ClientError {
    /// No response byte arrived within the configured read timeout. The
    /// connection is in an unknown state; drop it and reconnect.
    Timeout,
    /// A transport or framing failure (see [`ProtocolError`]).
    Protocol(ProtocolError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "read timed out waiting for a response"),
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Timeout => None,
            ClientError::Protocol(e) => Some(e),
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        // Both timeout kinds: unix sockets report `WouldBlock`, TCP
        // reports `TimedOut` (platform-dependent).
        match e {
            ProtocolError::Io(ref io)
                if matches!(
                    io.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                ClientError::Timeout
            }
            other => ClientError::Protocol(other),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::from(ProtocolError::Io(e))
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking serve-protocol client over TCP or a unix socket.
pub struct Client {
    transport: Transport,
    /// Client-side cap on response payloads.
    pub max_frame_bytes: usize,
    /// When true, query requests opt into chunked streaming delivery;
    /// [`Client::request_raw`] reassembles the chunk frames and verifies
    /// the trailer checksum, so callers see one [`Response`] either way
    /// (with [`Response::stream`] reporting which path it took).
    pub stream: bool,
}

impl Client {
    /// Connects over TCP (with [`DEFAULT_READ_TIMEOUT`] applied).
    ///
    /// # Errors
    ///
    /// The socket `connect` or option failure.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        Ok(Client {
            transport: Transport::Tcp(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            stream: false,
        })
    }

    /// Connects over a unix-domain socket (with [`DEFAULT_READ_TIMEOUT`]
    /// applied).
    ///
    /// # Errors
    ///
    /// The socket `connect` or option failure.
    #[cfg(unix)]
    pub fn connect_unix(path: &str) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        Ok(Client {
            transport: Transport::Unix(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            stream: false,
        })
    }

    /// Sets an OS-level read timeout for responses; `None` removes the
    /// default and waits forever.
    ///
    /// # Errors
    ///
    /// The socket option failure.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> std::io::Result<()> {
        match &self.transport {
            Transport::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Reads exactly one frame, mapping EOF-before-a-frame to
    /// [`ProtocolError::TruncatedFrame`].
    fn read_one(&mut self) -> Result<Vec<u8>, ClientError> {
        Ok(
            read_frame(&mut self.transport, self.max_frame_bytes)?.ok_or(
                ProtocolError::TruncatedFrame {
                    got: 0,
                    expected: crate::protocol::LEN_PREFIX,
                },
            )?,
        )
    }

    /// Sends a raw request payload and reads one complete response —
    /// reassembling chunk frames and verifying the trailer checksum when
    /// the server streams.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the read timeout elapses; otherwise
    /// transport failures or a malformed response. A server that closes
    /// the connection mid-response surfaces as
    /// [`ProtocolError::TruncatedFrame`] (single-frame or header) or
    /// [`ProtocolError::BadStream`]/`TruncatedFrame` (mid-stream); a
    /// body that does not match its declared trailer checksum as
    /// [`ProtocolError::ChecksumMismatch`].
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        self.transport.write_all(&encode_frame(payload))?;
        self.transport.flush()?;
        let first = self.read_one()?;
        let resp = parse_response(&first).map_err(ClientError::from)?;
        if !resp.stream {
            return Ok(resp);
        }
        // Stream header: the body arrives as chunk frames, then a
        // trailer with the authoritative status and checksum.
        let mut body = Vec::new();
        let mut checksum = BodyChecksum::new();
        loop {
            let frame = self.read_one()?;
            match parse_stream_frame(&frame).map_err(ClientError::from)? {
                StreamFrame::Chunk(bytes) => {
                    checksum.update(&bytes);
                    body.extend_from_slice(&bytes);
                }
                StreamFrame::Trailer {
                    mut response,
                    checksum: declared,
                } => {
                    response.stream = true;
                    if response.is_ok() {
                        let got = checksum.finish();
                        if got != declared {
                            return Err(ProtocolError::ChecksumMismatch {
                                expected: declared,
                                got,
                            }
                            .into());
                        }
                        response.body = body;
                    }
                    // A non-200 trailer voids the chunks already
                    // received: the body is discarded, not verified.
                    return Ok(response);
                }
            }
        }
    }

    /// Evaluates `query` over an NDJSON `body` (streamed delivery when
    /// [`Client::stream`] is set).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn query(
        &mut self,
        id: &str,
        tenant: &str,
        query: &str,
        deadline_ms: Option<u64>,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let payload = crate::protocol::encode_request_opts(
            Op::Query,
            id,
            tenant,
            query,
            deadline_ms,
            false,
            self.stream,
            body,
        );
        self.request_raw(&payload)
    }

    /// Evaluates `query` over a *server-stored* corpus named `corpus`
    /// (requires the server to run with `--corpus-dir`; repeat queries
    /// are accelerated by its structural-index cache).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn query_corpus(
        &mut self,
        id: &str,
        tenant: &str,
        query: &str,
        corpus: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let payload = crate::protocol::encode_corpus_request_opts(
            id,
            tenant,
            query,
            corpus,
            deadline_ms,
            self.stream,
        );
        self.request_raw(&payload)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        let payload =
            crate::protocol::encode_request(Op::Ping, "ping", "anon", "", None, false, b"");
        self.request_raw(&payload)
    }

    /// Fetches the metrics scrape (`json` selects the JSON rendering).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn metrics(&mut self, json: bool) -> Result<Response, ClientError> {
        let payload =
            crate::protocol::encode_request(Op::Metrics, "metrics", "anon", "", None, json, b"");
        self.request_raw(&payload)
    }
}
