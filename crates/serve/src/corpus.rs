//! Server-stored corpora and their persistent structural-index cache.
//!
//! A request that names a `"corpus"` is evaluated over a file under the
//! server's `--corpus-dir` instead of over the request body. Those are
//! the requests where re-classifying the same bytes on every query is
//! pure waste, so this module fronts them with the engine's
//! [`StructuralIndex`]: record spans plus per-record structural bitmaps,
//! persisted under `--index-cache` in the checksummed `JSKIDX1` format
//! and mapped straight into [`IndexedJsonSki`](jsonski::IndexedJsonSki)
//! on a hit.
//!
//! # Robustness contract
//!
//! The cache can only ever make a request *faster*, never wrong and
//! never failed:
//!
//! * Every load re-verifies the index against the corpus bytes actually
//!   read for this request (length + head/tail fingerprints) and against
//!   the engine-config digest, on top of the file format's per-section
//!   checksums. Torn, truncated, bit-flipped, version-skewed, and stale
//!   files all classify into a typed [`IndexError`] counter.
//! * Any index failure silently falls back to full classification and
//!   schedules a background rebuild; the request itself never observes
//!   the failure.
//! * Rebuilds write through the same atomic tmp + fsync + rename
//!   discipline as checkpoints, so a crash mid-write leaves the previous
//!   valid file (or no file) — never a half-written one.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use jsonski::index::{config_digest, index_path_for};
use jsonski::{EngineConfig, IndexError, IndexStats, StructuralIndex};

/// Why a stored-corpus request could not be served.
#[derive(Debug)]
pub enum CorpusError {
    /// The server was started without `--corpus-dir`.
    NotConfigured,
    /// The name is empty or tries to escape the corpus directory.
    BadName,
    /// No corpus file of that name exists (or it is unreadable).
    NotFound(std::io::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::NotConfigured => {
                write!(
                    f,
                    "no corpus directory configured (start with --corpus-dir)"
                )
            }
            CorpusError::BadName => write!(f, "corpus names must be plain file names"),
            CorpusError::NotFound(e) => write!(f, "corpus not found: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// The server's view of its stored corpora: reads corpus files, serves
/// their structural indexes (memory first, then disk), and owns the
/// background rebuild threads. One instance per [`Server`](crate::Server),
/// shared across connection and worker threads.
pub struct CorpusStore {
    corpus_dir: PathBuf,
    index_dir: Option<PathBuf>,
    digest: u64,
    stats: Arc<IndexStats>,
    /// Verified indexes resident in memory, by corpus name. Still
    /// re-verified against the bytes read for each request, so a corpus
    /// file mutated underneath the server degrades to a rebuild instead
    /// of serving bitmaps for bytes that no longer exist.
    resident: Mutex<HashMap<String, Arc<StructuralIndex>>>,
    /// Corpus names with a rebuild in flight (dedupes rebuild storms).
    building: Mutex<HashSet<String>>,
    /// Rebuild threads, joined by [`drain`](CorpusStore::drain).
    builders: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl CorpusStore {
    /// Creates a store over `corpus_dir`, persisting indexes under
    /// `index_dir` when given (created if absent; `None` keeps the cache
    /// memory-only). `config` must be the engine configuration requests
    /// will run under — its digest keys every index.
    ///
    /// # Errors
    ///
    /// Failure to create `index_dir`.
    pub fn new(
        corpus_dir: PathBuf,
        index_dir: Option<PathBuf>,
        config: &EngineConfig,
    ) -> std::io::Result<CorpusStore> {
        if let Some(dir) = &index_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(CorpusStore {
            corpus_dir,
            index_dir,
            digest: config_digest(config),
            stats: Arc::new(IndexStats::new()),
            resident: Mutex::new(HashMap::new()),
            building: Mutex::new(HashSet::new()),
            builders: Mutex::new(Vec::new()),
        })
    }

    /// The index-outcome counters, shared with the metrics scrape.
    pub fn stats(&self) -> &Arc<IndexStats> {
        &self.stats
    }

    /// Reads the named corpus file.
    ///
    /// # Errors
    ///
    /// [`CorpusError::BadName`] for names that are empty or not plain
    /// file names; [`CorpusError::NotFound`] when the read fails.
    pub fn read_corpus(&self, name: &str) -> Result<Vec<u8>, CorpusError> {
        if name.is_empty()
            || name == "."
            || name == ".."
            || name.contains('/')
            || name.contains('\\')
        {
            return Err(CorpusError::BadName);
        }
        std::fs::read(self.corpus_dir.join(name)).map_err(CorpusError::NotFound)
    }

    /// The verified structural index for `corpus` (the bytes just read
    /// for this request), or `None` when the request must fall back to
    /// full classification. Never fails: every non-hit outcome is counted
    /// in [`stats`](CorpusStore::stats) and — unless a rebuild is already
    /// in flight — schedules a background rebuild.
    pub fn index_for(self: &Arc<Self>, name: &str, corpus: &[u8]) -> Option<Arc<StructuralIndex>> {
        use std::sync::atomic::Ordering;
        // Bind before the `if let`: the guard must not live into the body,
        // which re-locks the map to evict a stale entry.
        let resident = self.resident.lock().unwrap().get(name).cloned();
        if let Some(idx) = resident {
            if idx.verify(corpus, self.digest).is_ok() {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Some(idx);
            }
            // The corpus changed under a resident index: drop it and fall
            // through to the disk path, which counts the staleness.
            self.resident.lock().unwrap().remove(name);
        }
        let err = match &self.index_dir {
            Some(dir) => {
                match StructuralIndex::load(&index_path_for(dir, name), corpus, self.digest) {
                    Ok(idx) => {
                        let idx = Arc::new(idx);
                        self.resident
                            .lock()
                            .unwrap()
                            .insert(name.to_string(), Arc::clone(&idx));
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(idx);
                    }
                    Err(e) => e,
                }
            }
            None => IndexError::Missing,
        };
        self.stats.record_error(&err);
        self.schedule_rebuild(name, corpus.to_vec());
        None
    }

    /// Spawns a background build of `name`'s index over `corpus` unless
    /// one is already in flight. The build classifies off the request
    /// path, persists atomically (when an index dir is configured), and
    /// installs the result in memory; build failures are silently dropped
    /// (the next request just falls back again).
    fn schedule_rebuild(self: &Arc<Self>, name: &str, corpus: Vec<u8>) {
        use std::sync::atomic::Ordering;
        {
            let mut building = self.building.lock().unwrap();
            if !building.insert(name.to_string()) {
                return;
            }
        }
        self.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
        let store = Arc::clone(self);
        let name = name.to_string();
        let handle = std::thread::spawn(move || {
            if let Ok(idx) = StructuralIndex::build(&corpus, store.digest) {
                let persisted = match &store.index_dir {
                    Some(dir) => idx.save(&index_path_for(dir, &name)).is_ok(),
                    None => true, // memory-only cache: nothing to persist
                };
                if persisted {
                    store
                        .resident
                        .lock()
                        .unwrap()
                        .insert(name.clone(), Arc::new(idx));
                }
            }
            store.building.lock().unwrap().remove(&name);
        });
        let mut builders = self.builders.lock().unwrap();
        builders.retain(|h| !h.is_finished());
        builders.push(handle);
    }

    /// Joins every in-flight rebuild (called during server drain, after
    /// the last request has finished).
    pub fn drain(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.builders.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jsonski-corpus-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wait_built(store: &Arc<CorpusStore>, name: &str, corpus: &[u8]) -> Arc<StructuralIndex> {
        for _ in 0..200 {
            store.drain();
            if let Some(idx) = store.index_for(name, corpus) {
                return idx;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("index for {name} never became available");
    }

    #[test]
    fn miss_then_background_build_then_hit() {
        let dir = tmp("hit");
        let corpus = b"{\"a\": 1}\n{\"a\": 2}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        assert!(store.index_for("c.ndjson", &bytes).is_none(), "cold miss");
        let idx = wait_built(&store, "c.ndjson", &bytes);
        assert_eq!(idx.record_count(), 2);
        use std::sync::atomic::Ordering;
        assert_eq!(store.stats().misses.load(Ordering::Relaxed), 1);
        assert!(store.stats().hits.load(Ordering::Relaxed) >= 1);
        assert_eq!(store.stats().rebuilds.load(Ordering::Relaxed), 1);
        // The persisted file survives a fresh store (a server restart).
        let fresh = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        assert!(fresh.index_for("c.ndjson", &bytes).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutated_corpus_degrades_to_stale_and_rebuilds() {
        let dir = tmp("stale");
        let corpus = b"{\"a\": 1}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        store.index_for("c.ndjson", &bytes);
        wait_built(&store, "c.ndjson", &bytes);
        // Mutate the corpus: the resident and on-disk indexes are now
        // for bytes that no longer exist.
        let mutated = b"{\"a\": 99}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &mutated).unwrap();
        let bytes = store.read_corpus("c.ndjson").unwrap();
        assert!(
            store.index_for("c.ndjson", &bytes).is_none(),
            "must go stale"
        );
        use std::sync::atomic::Ordering;
        assert!(store.stats().stale.load(Ordering::Relaxed) >= 1);
        let idx = wait_built(&store, "c.ndjson", &bytes);
        assert!(idx
            .verify(
                &mutated,
                jsonski::index::config_digest(&EngineConfig::default())
            )
            .is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_file_degrades_and_heals() {
        let dir = tmp("corrupt");
        let corpus = b"{\"a\": [1, 2, 3]}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        store.index_for("c.ndjson", &bytes);
        wait_built(&store, "c.ndjson", &bytes);
        // Flip a byte in the persisted index; a fresh store (no resident
        // copy) must detect it, fall back, and heal.
        let path = index_path_for(&dir.join("idx"), "c.ndjson");
        let mut blob = std::fs::read(&path).unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x41;
        std::fs::write(&path, &blob).unwrap();
        let fresh = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        assert!(fresh.index_for("c.ndjson", &bytes).is_none());
        use std::sync::atomic::Ordering;
        assert_eq!(fresh.stats().corrupt_fallback.load(Ordering::Relaxed), 1);
        wait_built(&fresh, "c.ndjson", &bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_corpus_names_are_rejected() {
        let dir = tmp("names");
        let store = CorpusStore::new(dir.clone(), None, &EngineConfig::default()).unwrap();
        for name in ["", ".", "..", "../etc/passwd", "a/b", "a\\b"] {
            assert!(
                matches!(
                    store.read_corpus(name),
                    Err(CorpusError::BadName | CorpusError::NotFound(_))
                ),
                "{name:?} must not resolve"
            );
        }
        assert!(matches!(
            store.read_corpus("absent.ndjson"),
            Err(CorpusError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
