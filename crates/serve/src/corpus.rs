//! Server-stored corpora and their persistent structural-index cache.
//!
//! A request that names a `"corpus"` is evaluated over a file under the
//! server's `--corpus-dir` instead of over the request body. Those are
//! the requests where re-classifying the same bytes on every query is
//! pure waste, so this module fronts them with the engine's
//! [`StructuralIndex`]: record spans plus per-record structural bitmaps,
//! persisted under `--index-cache` in the checksummed `JSKIDX1` format
//! and mapped straight into [`IndexedJsonSki`](jsonski::IndexedJsonSki)
//! on a hit.
//!
//! # Robustness contract
//!
//! The cache can only ever make a request *faster*, never wrong and
//! never failed:
//!
//! * Every load re-verifies the index against the corpus bytes actually
//!   read for this request (length + head/tail fingerprints) and against
//!   the engine-config digest, on top of the file format's per-section
//!   checksums. Torn, truncated, bit-flipped, version-skewed, and stale
//!   files all classify into a typed [`IndexError`] counter.
//! * Any index failure silently falls back to full classification and
//!   schedules a background rebuild; the request itself never observes
//!   the failure.
//! * Rebuilds write through the same atomic tmp + fsync + rename
//!   discipline as checkpoints, so a crash mid-write leaves the previous
//!   valid file (or no file) — never a half-written one.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use jsonski::index::{config_digest, index_path_for};
use jsonski::{EngineConfig, IndexError, IndexStats, MemBudget, MemPermit, StructuralIndex};

/// Why a stored-corpus request could not be served.
#[derive(Debug)]
pub enum CorpusError {
    /// The server was started without `--corpus-dir`.
    NotConfigured,
    /// The name is empty or tries to escape the corpus directory.
    BadName,
    /// No corpus file of that name exists (or it is unreadable).
    NotFound(std::io::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::NotConfigured => {
                write!(
                    f,
                    "no corpus directory configured (start with --corpus-dir)"
                )
            }
            CorpusError::BadName => write!(f, "corpus names must be plain file names"),
            CorpusError::NotFound(e) => write!(f, "corpus not found: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// A resident index plus the tracked-memory charge keeping it honest.
struct Resident {
    idx: Arc<StructuralIndex>,
    _permit: Option<MemPermit>,
}

/// The server's view of its stored corpora: reads corpus files, serves
/// their structural indexes (memory first, then disk), and owns the
/// background rebuild threads. One instance per [`Server`](crate::Server),
/// shared across connection and worker threads.
pub struct CorpusStore {
    corpus_dir: PathBuf,
    index_dir: Option<PathBuf>,
    digest: u64,
    stats: Arc<IndexStats>,
    /// Verified indexes resident in memory, by corpus name. Still
    /// re-verified against the bytes read for each request, so a corpus
    /// file mutated underneath the server degrades to a rebuild instead
    /// of serving bitmaps for bytes that no longer exist.
    resident: Mutex<HashMap<String, Resident>>,
    /// When set, resident indexes carry a tracked-memory charge; an index
    /// the budget refuses is still returned to its requester but not kept
    /// resident (the next request reloads it from disk).
    budget: Option<Arc<MemBudget>>,
    /// Corpus names with a rebuild in flight (dedupes rebuild storms).
    building: Mutex<HashSet<String>>,
    /// Rebuild threads, joined by [`drain`](CorpusStore::drain).
    builders: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl CorpusStore {
    /// Creates a store over `corpus_dir`, persisting indexes under
    /// `index_dir` when given (created if absent; `None` keeps the cache
    /// memory-only). `config` must be the engine configuration requests
    /// will run under — its digest keys every index.
    ///
    /// # Errors
    ///
    /// Failure to create `index_dir`.
    pub fn new(
        corpus_dir: PathBuf,
        index_dir: Option<PathBuf>,
        config: &EngineConfig,
    ) -> std::io::Result<CorpusStore> {
        if let Some(dir) = &index_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(CorpusStore {
            corpus_dir,
            index_dir,
            digest: config_digest(config),
            stats: Arc::new(IndexStats::new()),
            resident: Mutex::new(HashMap::new()),
            budget: None,
            building: Mutex::new(HashSet::new()),
            builders: Mutex::new(Vec::new()),
        })
    }

    /// Charges resident indexes against `budget`.
    pub fn with_budget(mut self, budget: Arc<MemBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The index-outcome counters, shared with the metrics scrape.
    pub fn stats(&self) -> &Arc<IndexStats> {
        &self.stats
    }

    fn validate_name(name: &str) -> Result<(), CorpusError> {
        if name.is_empty()
            || name == "."
            || name == ".."
            || name.contains('/')
            || name.contains('\\')
        {
            return Err(CorpusError::BadName);
        }
        Ok(())
    }

    /// Reads the named corpus file.
    ///
    /// # Errors
    ///
    /// [`CorpusError::BadName`] for names that are empty or not plain
    /// file names; [`CorpusError::NotFound`] when the read fails.
    pub fn read_corpus(&self, name: &str) -> Result<Vec<u8>, CorpusError> {
        Self::validate_name(name)?;
        std::fs::read(self.corpus_dir.join(name)).map_err(CorpusError::NotFound)
    }

    /// Resolves the named corpus to its validated path and current size
    /// without reading it — the handle the memory-budget ladder needs to
    /// decide between a resident read and streaming from disk.
    ///
    /// # Errors
    ///
    /// Same contract as [`read_corpus`](CorpusStore::read_corpus).
    pub fn corpus_len(&self, name: &str) -> Result<(PathBuf, u64), CorpusError> {
        Self::validate_name(name)?;
        let path = self.corpus_dir.join(name);
        let meta = std::fs::metadata(&path).map_err(CorpusError::NotFound)?;
        if !meta.is_file() {
            return Err(CorpusError::BadName);
        }
        Ok((path, meta.len()))
    }

    /// The verified structural index for `corpus` (the bytes just read
    /// for this request), or `None` when the request must fall back to
    /// full classification. Never fails: every non-hit outcome is counted
    /// in [`stats`](CorpusStore::stats) and — unless a rebuild is already
    /// in flight — schedules a background rebuild.
    pub fn index_for(self: &Arc<Self>, name: &str, corpus: &[u8]) -> Option<Arc<StructuralIndex>> {
        use std::sync::atomic::Ordering;
        // Bind before the `if let`: the guard must not live into the body,
        // which re-locks the map to evict a stale entry.
        let resident = self
            .resident
            .lock()
            .unwrap()
            .get(name)
            .map(|r| Arc::clone(&r.idx));
        if let Some(idx) = resident {
            if idx.verify(corpus, self.digest).is_ok() {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Some(idx);
            }
            // The corpus changed under a resident index: drop it and fall
            // through to the disk path, which counts the staleness.
            self.resident.lock().unwrap().remove(name);
        }
        let err = match &self.index_dir {
            Some(dir) => {
                match StructuralIndex::load(&index_path_for(dir, name), corpus, self.digest) {
                    Ok(idx) => {
                        let idx = Arc::new(idx);
                        self.install(name, Arc::clone(&idx));
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(idx);
                    }
                    Err(e) => e,
                }
            }
            None => IndexError::Missing,
        };
        self.stats.record_error(&err);
        self.schedule_rebuild(name, corpus.to_vec());
        None
    }

    /// Installs a verified index in the resident map, charging it to the
    /// memory budget when one is configured. A refused charge drops the
    /// resident copy (the caller keeps its own `Arc`; the next request
    /// reloads from disk) rather than blowing the budget.
    fn install(&self, name: &str, idx: Arc<StructuralIndex>) {
        let permit = match &self.budget {
            Some(b) => match b.try_reserve(None, idx.size_bytes()) {
                Ok(p) => Some(p),
                Err(_) => return,
            },
            None => None,
        };
        self.resident.lock().unwrap().insert(
            name.to_string(),
            Resident {
                idx,
                _permit: permit,
            },
        );
    }

    /// Evicts every resident index (releasing its memory charge),
    /// returning how many were dropped. The memory-pressure relief hook;
    /// persisted index files are untouched, so the next request reloads
    /// instead of rebuilding.
    pub fn evict_residents(&self) -> usize {
        let mut resident = self.resident.lock().unwrap();
        let n = resident.len();
        resident.clear();
        n
    }

    /// Warms the index cache for every file in the corpus directory:
    /// loads each persisted index (or builds and persists one) and
    /// installs it resident, so the first request pays a lookup instead
    /// of a classification. Returns per-corpus results — `Ok(records)`
    /// for a warmed index, `Err(why)` for a corpus that could not be
    /// warmed (the corpus itself still serves, via full classification).
    /// Outcomes flow through the usual [`stats`](CorpusStore::stats)
    /// counters.
    pub fn warm(self: &Arc<Self>) -> Vec<(String, Result<usize, String>)> {
        let mut results = Vec::new();
        let entries = match std::fs::read_dir(&self.corpus_dir) {
            Ok(rd) => rd,
            Err(e) => {
                results.push(("<corpus-dir>".to_string(), Err(e.to_string())));
                return results;
            }
        };
        let mut names: Vec<String> = entries
            .flatten()
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            let outcome = match self.read_corpus(&name) {
                Ok(bytes) => match self.index_for(&name, &bytes) {
                    Some(idx) => Ok(idx.record_count()),
                    None => {
                        // Miss: `index_for` scheduled a rebuild. Join it
                        // and retry once — warm is startup-synchronous.
                        self.drain();
                        match self.index_for(&name, &bytes) {
                            Some(idx) => Ok(idx.record_count()),
                            None => Err("index build failed".to_string()),
                        }
                    }
                },
                Err(e) => Err(e.to_string()),
            };
            results.push((name, outcome));
        }
        results
    }

    /// Spawns a background build of `name`'s index over `corpus` unless
    /// one is already in flight. The build classifies off the request
    /// path, persists atomically (when an index dir is configured), and
    /// installs the result in memory; build failures are silently dropped
    /// (the next request just falls back again).
    fn schedule_rebuild(self: &Arc<Self>, name: &str, corpus: Vec<u8>) {
        use std::sync::atomic::Ordering;
        {
            let mut building = self.building.lock().unwrap();
            if !building.insert(name.to_string()) {
                return;
            }
        }
        self.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
        let store = Arc::clone(self);
        let name = name.to_string();
        let handle = std::thread::spawn(move || {
            if let Ok(idx) = StructuralIndex::build(&corpus, store.digest) {
                let persisted = match &store.index_dir {
                    Some(dir) => idx.save(&index_path_for(dir, &name)).is_ok(),
                    None => true, // memory-only cache: nothing to persist
                };
                if persisted {
                    store.install(&name, Arc::new(idx));
                }
            }
            store.building.lock().unwrap().remove(&name);
        });
        let mut builders = self.builders.lock().unwrap();
        builders.retain(|h| !h.is_finished());
        builders.push(handle);
    }

    /// Joins every in-flight rebuild (called during server drain, after
    /// the last request has finished).
    pub fn drain(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.builders.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jsonski-corpus-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wait_built(store: &Arc<CorpusStore>, name: &str, corpus: &[u8]) -> Arc<StructuralIndex> {
        for _ in 0..200 {
            store.drain();
            if let Some(idx) = store.index_for(name, corpus) {
                return idx;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("index for {name} never became available");
    }

    #[test]
    fn miss_then_background_build_then_hit() {
        let dir = tmp("hit");
        let corpus = b"{\"a\": 1}\n{\"a\": 2}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        assert!(store.index_for("c.ndjson", &bytes).is_none(), "cold miss");
        let idx = wait_built(&store, "c.ndjson", &bytes);
        assert_eq!(idx.record_count(), 2);
        use std::sync::atomic::Ordering;
        assert_eq!(store.stats().misses.load(Ordering::Relaxed), 1);
        assert!(store.stats().hits.load(Ordering::Relaxed) >= 1);
        assert_eq!(store.stats().rebuilds.load(Ordering::Relaxed), 1);
        // The persisted file survives a fresh store (a server restart).
        let fresh = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        assert!(fresh.index_for("c.ndjson", &bytes).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutated_corpus_degrades_to_stale_and_rebuilds() {
        let dir = tmp("stale");
        let corpus = b"{\"a\": 1}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        store.index_for("c.ndjson", &bytes);
        wait_built(&store, "c.ndjson", &bytes);
        // Mutate the corpus: the resident and on-disk indexes are now
        // for bytes that no longer exist.
        let mutated = b"{\"a\": 99}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &mutated).unwrap();
        let bytes = store.read_corpus("c.ndjson").unwrap();
        assert!(
            store.index_for("c.ndjson", &bytes).is_none(),
            "must go stale"
        );
        use std::sync::atomic::Ordering;
        assert!(store.stats().stale.load(Ordering::Relaxed) >= 1);
        let idx = wait_built(&store, "c.ndjson", &bytes);
        assert!(idx
            .verify(
                &mutated,
                jsonski::index::config_digest(&EngineConfig::default())
            )
            .is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_file_degrades_and_heals() {
        let dir = tmp("corrupt");
        let corpus = b"{\"a\": [1, 2, 3]}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        store.index_for("c.ndjson", &bytes);
        wait_built(&store, "c.ndjson", &bytes);
        // Flip a byte in the persisted index; a fresh store (no resident
        // copy) must detect it, fall back, and heal.
        let path = index_path_for(&dir.join("idx"), "c.ndjson");
        let mut blob = std::fs::read(&path).unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x41;
        std::fs::write(&path, &blob).unwrap();
        let fresh = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        assert!(fresh.index_for("c.ndjson", &bytes).is_none());
        use std::sync::atomic::Ordering;
        assert_eq!(fresh.stats().corrupt_fallback.load(Ordering::Relaxed), 1);
        wait_built(&fresh, "c.ndjson", &bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_builds_every_index_up_front() {
        let dir = tmp("warm");
        std::fs::write(dir.join("a.ndjson"), b"{\"a\": 1}\n{\"a\": 2}\n").unwrap();
        std::fs::write(dir.join("b.ndjson"), b"{\"b\": 1}\n").unwrap();
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default()).unwrap(),
        );
        let results = store.warm();
        // The idx/ subdirectory is skipped (files only), so exactly the
        // two corpora warm, in name order.
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], ("a.ndjson".to_string(), Ok(2)));
        assert_eq!(results[1], ("b.ndjson".to_string(), Ok(1)));
        // Warmed: the next lookup is a pure hit, no rebuild scheduled.
        use std::sync::atomic::Ordering;
        let rebuilds = store.stats().rebuilds.load(Ordering::Relaxed);
        let bytes = store.read_corpus("a.ndjson").unwrap();
        assert!(store.index_for("a.ndjson", &bytes).is_some());
        assert_eq!(store.stats().rebuilds.load(Ordering::Relaxed), rebuilds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_releases_budget_and_disk_reload_heals() {
        let dir = tmp("evict");
        let corpus = b"{\"a\": 1}\n{\"a\": 2}\n".to_vec();
        std::fs::write(dir.join("c.ndjson"), &corpus).unwrap();
        let budget = MemBudget::new(1 << 20);
        let store = Arc::new(
            CorpusStore::new(dir.clone(), Some(dir.join("idx")), &EngineConfig::default())
                .unwrap()
                .with_budget(Arc::clone(&budget)),
        );
        let bytes = store.read_corpus("c.ndjson").unwrap();
        store.index_for("c.ndjson", &bytes);
        wait_built(&store, "c.ndjson", &bytes);
        assert!(budget.used() > 0, "resident index is charged");
        assert_eq!(store.evict_residents(), 1);
        assert_eq!(budget.used(), 0, "eviction releases the charge");
        // The persisted file survives eviction: reload, not rebuild.
        use std::sync::atomic::Ordering;
        let rebuilds = store.stats().rebuilds.load(Ordering::Relaxed);
        assert!(store.index_for("c.ndjson", &bytes).is_some());
        assert_eq!(store.stats().rebuilds.load(Ordering::Relaxed), rebuilds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_len_resolves_without_reading() {
        let dir = tmp("len");
        std::fs::write(dir.join("c.ndjson"), b"{\"a\": 1}\n").unwrap();
        let store = CorpusStore::new(dir.clone(), None, &EngineConfig::default()).unwrap();
        let (path, len) = store.corpus_len("c.ndjson").unwrap();
        assert_eq!(len, 9);
        assert!(path.ends_with("c.ndjson"));
        assert!(matches!(
            store.corpus_len("../etc/passwd"),
            Err(CorpusError::BadName)
        ));
        assert!(matches!(
            store.corpus_len("absent"),
            Err(CorpusError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_corpus_names_are_rejected() {
        let dir = tmp("names");
        let store = CorpusStore::new(dir.clone(), None, &EngineConfig::default()).unwrap();
        for name in ["", ".", "..", "../etc/passwd", "a/b", "a\\b"] {
            assert!(
                matches!(
                    store.read_corpus(name),
                    Err(CorpusError::BadName | CorpusError::NotFound(_))
                ),
                "{name:?} must not resolve"
            );
        }
        assert!(matches!(
            store.read_corpus("absent.ndjson"),
            Err(CorpusError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
