//! `jsonski-serve`: a fault-tolerant, load-shedding query-service daemon.
//!
//! PRs 3–5 made a *single run* robust — fault injection, resource limits,
//! crash safety, strict validation. This crate makes the engine survive
//! *between* runs: a long-running TCP/unix-socket daemon that amortizes
//! process startup and query compilation across requests, engineered
//! robustness-first and — like the rest of the workspace — with zero
//! external dependencies.
//!
//! The design splits into five layers (plus the tracked-memory ledger,
//! [`jsonski::membudget`], which lives in the core crate):
//!
//! * [`protocol`] — length-prefixed JSONL frames: a 4-byte big-endian
//!   length, a JSON header line, and a raw NDJSON body. Every frame is
//!   written with a single `write_all`, so a client can never observe a
//!   truncated or interleaved frame. A response is either one frame (the
//!   wire default) or — when the client opts in with `"stream": true` —
//!   a chunked sequence: a stream header, body-chunk frames flushed every
//!   [`ServeConfig::chunk_bytes`](server::ServeConfig::chunk_bytes), and
//!   a trailer carrying the final status plus an FNV-1a checksum that
//!   [`Client`] verifies on reassembly.
//! * [`admission`] — the bounded request queue and per-tenant quotas.
//!   Overload produces an immediate, typed `429 shed` response instead of
//!   queue collapse; occupancy feeds the engine's pipeline-health
//!   histograms. Memory pressure sheds the same way (`429 memory`), but
//!   only after eviction and forced streaming have been tried — every
//!   resident byte (request bodies, cached queries, resident corpora,
//!   in-flight response buffers) is charged to the budget's RAII permits
//!   and surfaced as `mem_*` gauges in the metrics scrape.
//! * [`cache`] — an LRU cache of compiled queries keyed by
//!   `(query, config digest)`, so repeat queries skip JSONPath parsing and
//!   automaton construction entirely.
//! * [`corpus`] — server-stored corpora and their crash-safe persistent
//!   structural-index cache: repeat queries over a stored corpus skip
//!   classification entirely, and any damaged/stale index file degrades
//!   silently to full classification plus a background rebuild.
//! * [`server`] — the daemon itself: per-request deadlines enforced by the
//!   connection thread as watchdog and threaded through
//!   [`ResourceLimits::deadline`](jsonski::ResourceLimits) +
//!   [`CancellationToken`](jsonski::CancellationToken) into evaluation;
//!   slow-loris read timeouts with a budgeted stall allowance; per-request
//!   `catch_unwind`; and SIGTERM-style graceful drain that finishes every
//!   in-flight request before returning.
//!
//! # Quick start
//!
//! ```no_run
//! use jsonski_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let shutdown = server.shutdown_token();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect_tcp(&addr).unwrap();
//! let resp = client
//!     .query("req-1", "tenant-a", "$.a[*]", None, b"{\"a\": [1, 2]}\n")
//!     .unwrap();
//! assert!(resp.is_ok());
//! assert_eq!(resp.body, b"1\n2\n");
//!
//! shutdown.cancel(); // graceful drain
//! handle.join().unwrap().unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod corpus;
pub mod protocol;
pub mod server;

pub use admission::{Dispatcher, TenantPermit};
pub use cache::QueryCache;
pub use client::{Client, ClientError, DEFAULT_READ_TIMEOUT};
pub use corpus::{CorpusError, CorpusStore};
pub use protocol::{
    encode_corpus_request, encode_corpus_request_opts, encode_frame, encode_request,
    encode_request_opts, encode_response, parse_request, parse_response, parse_stream_frame,
    read_frame, write_frame, BodyChecksum, Op, ProtocolError, Request, Response, ShedReason,
    Status, StreamFrame, DEFAULT_MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, ServeStats, ServeSummary, Server};
