//! Admission control: the bounded request queue and per-tenant quotas.
//!
//! Load shedding happens *before* a request touches a worker. A request is
//! admitted only if (a) the bounded queue is below its watermark and (b)
//! its tenant is under quota; otherwise the caller gets a typed
//! [`ShedReason`] to turn into a 429-style response immediately. An
//! admitted request holds a tenant slot until its response has been
//! written (RAII [`TenantPermit`]), so quota counts cover the whole
//! request lifetime, not just queue residency.
//!
//! Queue occupancy at every enqueue is recorded into the engine's
//! pipeline-health histogram ([`Metrics::record_queue_occupancy`]) — the
//! same instrument the `Pipeline` uses — so one scrape shows both socket
//! and evaluation pressure.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use jsonski::Metrics;

use crate::protocol::ShedReason;

/// A unit of queued work: opaque to the dispatcher, executed by a worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    /// Requests admitted but not yet finished by a worker (queue residents
    /// plus in-evaluation). Bounded by `max_queue`.
    queued: usize,
    /// Per-tenant in-flight counts (admission through response write).
    tenants: HashMap<String, usize>,
    shutting_down: bool,
}

/// The shared admission gate + work queue feeding the worker pool.
pub struct Dispatcher {
    state: Mutex<State>,
    work_ready: Condvar,
    max_queue: usize,
    tenant_quota: usize,
    metrics: Arc<Metrics>,
}

/// RAII guard for one tenant's in-flight slot; dropping it releases the
/// slot. Held by the connection thread until the response is on the wire.
pub struct TenantPermit {
    dispatcher: Arc<Dispatcher>,
    tenant: String,
}

impl std::fmt::Debug for TenantPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantPermit")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        let mut state = self.dispatcher.state.lock().unwrap();
        if let Some(n) = state.tenants.get_mut(&self.tenant) {
            *n -= 1;
            if *n == 0 {
                state.tenants.remove(&self.tenant);
            }
        }
    }
}

impl Dispatcher {
    /// Creates a dispatcher with a queue watermark of `max_queue` admitted
    /// requests and at most `tenant_quota` in-flight requests per tenant.
    pub fn new(max_queue: usize, tenant_quota: usize, metrics: Arc<Metrics>) -> Arc<Self> {
        Arc::new(Dispatcher {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                queued: 0,
                tenants: HashMap::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            max_queue: max_queue.max(1),
            tenant_quota: tenant_quota.max(1),
            metrics,
        })
    }

    /// Tries to admit a request for `tenant`: checks the queue watermark
    /// and the tenant quota, and on success reserves a tenant slot.
    ///
    /// # Errors
    ///
    /// The typed [`ShedReason`] the server turns into a 429-style frame.
    pub fn admit(self: &Arc<Self>, tenant: &str) -> Result<TenantPermit, ShedReason> {
        let mut state = self.state.lock().unwrap();
        if state.queued >= self.max_queue {
            return Err(ShedReason::QueueFull);
        }
        let count = state.tenants.entry(tenant.to_string()).or_insert(0);
        if *count >= self.tenant_quota {
            return Err(ShedReason::TenantQuota);
        }
        *count += 1;
        state.queued += 1;
        drop(state);
        Ok(TenantPermit {
            dispatcher: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    /// Queues an admitted request's job for the worker pool and records
    /// queue occupancy into the pipeline-health histogram.
    pub fn enqueue(&self, job: Job) {
        let mut state = self.state.lock().unwrap();
        state.queue.push_back(job);
        self.metrics.record_queue_occupancy(state.queued as u64);
        drop(state);
        self.work_ready.notify_one();
    }

    /// Worker loop: blocks for the next job; returns `None` once shutdown
    /// has been signalled *and* the queue is fully drained (jobs enqueued
    /// before shutdown are always executed — that is the drain guarantee).
    pub fn next_job(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.queue.pop_front() {
                return Some(job);
            }
            if state.shutting_down {
                return None;
            }
            state = self.work_ready.wait(state).unwrap();
        }
    }

    /// Marks one admitted request finished (its job ran or was abandoned),
    /// releasing its queue slot.
    pub fn finish(&self) {
        let mut state = self.state.lock().unwrap();
        state.queued = state.queued.saturating_sub(1);
    }

    /// Signals workers to exit once the queue is drained.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap();
        state.shutting_down = true;
        drop(state);
        self.work_ready.notify_all();
    }

    /// Admitted-but-unfinished request count (queue + in evaluation).
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatcher(max_queue: usize, quota: usize) -> Arc<Dispatcher> {
        Dispatcher::new(max_queue, quota, Arc::new(Metrics::disabled()))
    }

    #[test]
    fn queue_watermark_sheds() {
        let d = dispatcher(2, 10);
        let _a = d.admit("t").unwrap();
        let _b = d.admit("t").unwrap();
        assert_eq!(d.admit("t").unwrap_err(), ShedReason::QueueFull);
        d.finish();
        let _c = d.admit("t").unwrap();
    }

    #[test]
    fn tenant_quota_sheds_and_releases_on_drop() {
        let d = dispatcher(100, 2);
        let a = d.admit("alice").unwrap();
        let _b = d.admit("alice").unwrap();
        assert_eq!(d.admit("alice").unwrap_err(), ShedReason::TenantQuota);
        // Another tenant is unaffected.
        let _c = d.admit("bob").unwrap();
        drop(a);
        let _d2 = d.admit("alice").unwrap();
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_stopping_workers() {
        let d = dispatcher(10, 10);
        let ran = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for _ in 0..3 {
            let _permit = d.admit("t").unwrap();
            let ran = Arc::clone(&ran);
            d.enqueue(Box::new(move || {
                ran.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }));
            std::mem::forget(_permit);
        }
        d.shutdown();
        // A worker that starts after shutdown still sees the queued jobs.
        while let Some(job) = d.next_job() {
            job();
            d.finish();
        }
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 3);
        assert_eq!(d.in_flight(), 0);
    }
}
