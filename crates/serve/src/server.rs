//! The daemon: listener, connection threads, worker pool, and drain.
//!
//! # Threading model
//!
//! One acceptor (the thread that called [`Server::run`]), one thread per
//! connection, and a fixed pool of evaluation workers fed through the
//! [`Dispatcher`]. A connection thread never
//! evaluates; it reads frames, runs admission, hands the body to the pool,
//! and waits for the result with the request's deadline as its own
//! watchdog. That split is what makes the deadline unconditional: even a
//! request stuck behind a full queue times out, because the clock starts
//! at admission, not at evaluation.
//!
//! # Robustness invariants
//!
//! * **No truncated frames.** Every frame — a whole single-frame
//!   response, or each header/chunk/trailer of a streamed one — is
//!   assembled fully in memory and written by its connection thread with
//!   a single `write_all`. The peer sees whole frames or a dropped
//!   connection — never a prefix, never an interleave.
//! * **No pinned workers.** Deadlines cancel through the engine's
//!   [`CancellationToken`], checked at record boundaries; socket reads
//!   carry an OS-level timeout with a budgeted stall allowance
//!   (slow-loris defense).
//! * **No lost work on drain.** Shutdown stops accepting, answers new
//!   requests with `503 draining`, and joins every connection thread —
//!   each of which finishes its in-flight request through the worker pool
//!   before exiting.
//! * **No fleet kill from one input.** Evaluation runs under the
//!   pipeline's per-record `catch_unwind` plus a whole-request unwind
//!   guard; a poisoned record costs its request a `500`, nothing more.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use jsonski::{
    digest_parts, CancellationToken, ChunkedRecords, EngineConfig, EngineError, ErrorPolicy,
    IndexedJsonSki, IndexedRecords, JsonSki, LimitExceeded, Match, MatchSink, MemBudget, MemDenied,
    MemPermit, Metrics, Pipeline, ResourceLimits, SliceRecords, StructuralIndex, ValidationMode,
};

use crate::admission::Dispatcher;
use crate::cache::QueryCache;
use crate::corpus::{CorpusError, CorpusStore};
use crate::protocol::{
    encode_response, encode_stream_chunk, encode_stream_header, encode_stream_trailer,
    parse_request, read_frame, BodyChecksum, Op, ProtocolError, Request, ShedReason, Status,
    DEFAULT_MAX_FRAME_BYTES,
};

/// Server tuning knobs. Construct with [`ServeConfig::default`] and adjust
/// builder-style.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Evaluation worker threads.
    pub workers: usize,
    /// Admission watermark: maximum admitted-but-unfinished requests.
    pub max_queue: usize,
    /// Maximum in-flight requests per tenant.
    pub tenant_quota: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Hard cap; client-requested deadlines are clamped to this.
    pub max_deadline: Duration,
    /// OS-level socket read timeout (one tick of the slow-loris clock).
    pub read_timeout: Duration,
    /// Mid-frame read timeouts tolerated before the connection is closed.
    pub stall_budget: u32,
    /// OS-level socket write timeout (one tick of the response-write
    /// stall clock).
    pub write_timeout: Duration,
    /// Mid-response write timeouts tolerated before the connection is
    /// closed — the write-side twin of `stall_budget`, so a client that
    /// stops draining its receive buffer cannot pin a connection thread.
    pub write_stall_budget: u32,
    /// Maximum frame payload size.
    pub max_frame_bytes: usize,
    /// Compiled-query cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Whether `op: "metrics"` scrapes are served.
    pub metrics_endpoint: bool,
    /// Engine configuration (fast-forward groups, validation, kernel) the
    /// compiled-query cache is keyed on.
    pub engine_config: EngineConfig,
    /// Per-record resource guards; the per-request deadline is layered on
    /// top of these.
    pub limits: ResourceLimits,
    /// Per-record failure policy for request bodies.
    pub error_policy: ErrorPolicy,
    /// Directory of server-stored corpora that requests may name via the
    /// `"corpus"` header field (`None` disables stored-corpus requests).
    pub corpus_dir: Option<std::path::PathBuf>,
    /// Directory for the persistent structural-index cache over stored
    /// corpora (`None` keeps the index cache memory-only).
    pub index_cache: Option<std::path::PathBuf>,
    /// Global tracked-memory budget in bytes across request bodies,
    /// response buffers, the compiled-query cache, and resident corpus
    /// indexes (0 = unlimited, gauges still track).
    pub memory_budget: usize,
    /// Per-tenant share of the memory budget in bytes (0 = uncapped).
    pub tenant_memory_budget: usize,
    /// High-water response buffer for chunked streaming responses, and
    /// the read-buffer size when a corpus is streamed from disk under
    /// memory pressure.
    pub chunk_bytes: usize,
    /// Warm the stored-corpus index cache at startup instead of on first
    /// request (requires `corpus_dir`).
    pub index_warm: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_queue: 64,
            tenant_quota: 16,
            default_deadline: Duration::from_millis(2000),
            max_deadline: Duration::from_millis(30_000),
            read_timeout: Duration::from_millis(250),
            stall_budget: 4,
            write_timeout: Duration::from_millis(250),
            write_stall_budget: 8,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            cache_capacity: 128,
            metrics_endpoint: false,
            engine_config: EngineConfig::default(),
            limits: ResourceLimits::default(),
            error_policy: ErrorPolicy::FailFast,
            corpus_dir: None,
            index_cache: None,
            memory_budget: 0,
            tenant_memory_budget: 0,
            chunk_bytes: 256 * 1024,
            index_warm: false,
        }
    }
}

impl ServeConfig {
    /// Digest of everything baked into a cached compiled query, computed
    /// with the checkpoint format's [`digest_parts`]. Two configurations
    /// that would compile different automata never share a cache entry.
    pub fn cache_digest(&self) -> u64 {
        let cfg = &self.engine_config;
        let parts = [
            format!("g1={} g4={} g5={}", cfg.g1, cfg.g4, cfg.g5),
            match cfg.validation {
                ValidationMode::Permissive => "permissive".to_string(),
                ValidationMode::Strict => "strict".to_string(),
            },
            match cfg.kernel {
                Some(k) => format!("kernel={}", k.name()),
                None => "kernel=auto".to_string(),
            },
        ];
        digest_parts(&parts)
    }
}

/// Monotonic counters describing the server's lifetime, exposed by the
/// metrics scrape and summarized by [`ServeSummary`]. All counters are
/// relaxed atomics: cheap to bump, read-consistent enough for telemetry.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request frames parsed (any op).
    pub requests: AtomicU64,
    /// Query requests past admission control (holding a tenant permit).
    /// `admitted - ok - timeouts - eval_failed - panics` is the number of
    /// admitted queries still in flight.
    pub admitted: AtomicU64,
    /// Query requests answered `200 ok`.
    pub ok: AtomicU64,
    /// Requests rejected `400 bad_request`.
    pub bad_request: AtomicU64,
    /// Requests that hit their deadline (`408 timeout`).
    pub timeouts: AtomicU64,
    /// Requests whose body failed evaluation (`422 eval_failed`).
    pub eval_failed: AtomicU64,
    /// Requests shed for queue pressure (`429`, reason `queue_full`).
    pub shed_queue: AtomicU64,
    /// Requests shed for tenant quota (`429`, reason `tenant_quota`).
    pub shed_tenant: AtomicU64,
    /// Requests shed because their buffers would exceed the memory
    /// budget even after eviction (`429`, reason `memory`).
    pub shed_memory: AtomicU64,
    /// `200 ok` responses delivered as chunked streams (header + chunk
    /// frames + checksummed trailer).
    pub streamed: AtomicU64,
    /// Requests that panicked in evaluation (`500 panic`).
    pub panics: AtomicU64,
    /// Requests rejected because the server is draining (`503`).
    pub draining_rejects: AtomicU64,
    /// `op: "ping"` probes answered.
    pub pings: AtomicU64,
    /// `op: "metrics"` scrapes served.
    pub scrapes: AtomicU64,
    /// Connections dropped for protocol violations (bad frame, oversized,
    /// truncated).
    pub protocol_errors: AtomicU64,
    /// Connections closed for stalling mid-frame past the budget.
    pub stalled_conns: AtomicU64,
    /// Connections closed because the peer stopped draining its receive
    /// buffer past the response-write stall budget.
    pub stalled_writes: AtomicU64,
    /// Stored-corpus requests answered `404 not_found`.
    pub corpus_not_found: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters as `name value` scrape lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.pairs() {
            out.push_str(&format!("serve_{name} {v}\n"));
        }
        out
    }

    /// Renders the counters as a JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.pairs().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {v}"));
        }
        out.push('}');
        out
    }

    fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("admitted", self.admitted.load(Ordering::Relaxed)),
            ("ok", self.ok.load(Ordering::Relaxed)),
            ("bad_request", self.bad_request.load(Ordering::Relaxed)),
            ("timeouts", self.timeouts.load(Ordering::Relaxed)),
            ("eval_failed", self.eval_failed.load(Ordering::Relaxed)),
            ("shed_queue", self.shed_queue.load(Ordering::Relaxed)),
            ("shed_tenant", self.shed_tenant.load(Ordering::Relaxed)),
            ("shed_memory", self.shed_memory.load(Ordering::Relaxed)),
            ("streamed", self.streamed.load(Ordering::Relaxed)),
            ("panics", self.panics.load(Ordering::Relaxed)),
            (
                "draining_rejects",
                self.draining_rejects.load(Ordering::Relaxed),
            ),
            ("pings", self.pings.load(Ordering::Relaxed)),
            ("scrapes", self.scrapes.load(Ordering::Relaxed)),
            (
                "protocol_errors",
                self.protocol_errors.load(Ordering::Relaxed),
            ),
            ("stalled_conns", self.stalled_conns.load(Ordering::Relaxed)),
            (
                "stalled_writes",
                self.stalled_writes.load(Ordering::Relaxed),
            ),
            (
                "corpus_not_found",
                self.corpus_not_found.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// What [`Server::run`] reports after a graceful drain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request frames served over the lifetime.
    pub requests: u64,
    /// `200 ok` responses.
    pub ok: u64,
    /// Typed shed responses (both reasons).
    pub shed: u64,
    /// Deadline timeouts.
    pub timeouts: u64,
    /// Evaluation panics survived.
    pub panics: u64,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted connection, TCP or unix-domain, behind a common
/// `Read + Write` face.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct Shared {
    config: ServeConfig,
    cache_digest: u64,
    dispatcher: Arc<Dispatcher>,
    cache: QueryCache,
    corpus: Option<Arc<CorpusStore>>,
    stats: ServeStats,
    metrics: Arc<Metrics>,
    /// The tracked-memory ledger every resident byte is charged to.
    budget: Arc<MemBudget>,
    shutdown: CancellationToken,
    /// Set the moment drain begins: new requests get `503`, idle
    /// connections close at their next read tick.
    draining: AtomicBool,
}

/// The outcome a worker sends back to the waiting connection thread.
struct WorkResult {
    status: Status,
    matches: u64,
    records: u64,
    skipped: u64,
    reason: Option<String>,
    /// Response body for single-frame delivery; empty for streamed
    /// responses (the body already went out as chunk frames).
    body: Vec<u8>,
    /// FNV-1a checksum over the chunk bytes of a streamed response
    /// (carried in the trailer; 0 for single-frame responses).
    checksum: u64,
    /// Tracked-memory charge covering `body` while it sits in the
    /// worker→connection channel and on the write path; released when
    /// the result is dropped after the response frame is written.
    permit: Option<MemPermit>,
}

/// A worker→connection message while a request is in flight: zero or
/// more body chunks (streamed requests only), then exactly one `Done`.
enum StreamMsg {
    /// A body chunk plus the memory charge covering it; the connection
    /// thread drops the permit after the chunk frame is written.
    Chunk(Vec<u8>, Option<MemPermit>),
    /// The request's final outcome.
    Done(WorkResult),
}

/// Evaluation input: request/corpus bytes resident in memory (with their
/// memory charge), or a corpus streamed from disk because its bytes
/// could not be reserved — the degradation ladder's bounded-input rung.
enum EvalInput {
    Slice(Vec<u8>, #[allow(dead_code)] Option<MemPermit>),
    File(std::path::PathBuf, #[allow(dead_code)] Option<MemPermit>),
}

/// Why the response sink broke off a run early.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkFail {
    /// The response buffer could not be charged even after eviction.
    Memory,
    /// The connection thread stopped receiving (peer gone).
    Receiver,
}

/// Response-buffer charge granularity: small enough to keep tracked
/// usage honest, large enough that a match-per-grow never happens.
const CHARGE_STEP: usize = 64 * 1024;

/// The degradation ladder's first rung: evict every evictable resident
/// (compiled queries, corpus indexes), counting the evictions.
fn relieve_memory(shared: &Shared) -> usize {
    let mut n = shared.cache.clear();
    if let Some(c) = &shared.corpus {
        n += c.evict_residents();
    }
    shared
        .budget
        .evictions
        .fetch_add(n as u64, Ordering::Relaxed);
    n
}

/// Reserves `bytes`, retrying once after eviction on denial.
fn reserve_with_relief(
    shared: &Shared,
    tenant: Option<&str>,
    bytes: usize,
) -> Result<MemPermit, MemDenied> {
    match shared.budget.try_reserve(tenant, bytes) {
        Ok(p) => Ok(p),
        Err(_) => {
            relieve_memory(shared);
            shared.budget.try_reserve(tenant, bytes)
        }
    }
}

/// Staging sink: accumulates match bytes as NDJSON lines, charged to the
/// memory budget as it grows. Mirrors the pipeline's discard-on-failure
/// staging — under `FailFast` an error aborts the run and the buffer is
/// thrown away, so a non-`ok` response never carries partial output.
///
/// For a stream-opted request (`tx` set) the sink flushes the buffer as
/// a chunk frame whenever it reaches `chunk_bytes`, so the server's
/// high-water response buffer is the chunk size, not the match set. A
/// denied buffer charge flushes early (shrinking the effective chunk)
/// before giving up; only a charge that fails with an *empty* buffer
/// sheds the request.
struct ChunkSink<'a> {
    shared: &'a Shared,
    tenant: &'a str,
    buf: Vec<u8>,
    matches: u64,
    /// Charge currently held for `buf`.
    permit: Option<MemPermit>,
    charged: usize,
    /// Chunk channel for stream-opted requests; `None` materializes the
    /// whole body in `buf`.
    tx: Option<&'a mpsc::SyncSender<StreamMsg>>,
    chunk_bytes: usize,
    checksum: BodyChecksum,
    fail: Option<SinkFail>,
}

impl<'a> ChunkSink<'a> {
    fn new(
        shared: &'a Shared,
        tenant: &'a str,
        tx: Option<&'a mpsc::SyncSender<StreamMsg>>,
    ) -> Self {
        ChunkSink {
            shared,
            tenant,
            buf: Vec::new(),
            matches: 0,
            permit: None,
            charged: 0,
            tx,
            chunk_bytes: shared.config.chunk_bytes.max(1),
            checksum: BodyChecksum::new(),
            fail: None,
        }
    }

    /// Grows the buffer charge to cover `buf`, evicting residents on
    /// denial. Prefers reserving a whole [`CHARGE_STEP`] ahead (so a
    /// match-per-reserve never happens) but falls back to the exact
    /// shortfall — a small response must fit under a small tenant cap.
    /// Returns false when the budget refuses even after relief.
    fn ensure_charged(&mut self) -> bool {
        if self.buf.len() <= self.charged {
            return true;
        }
        let need = self.buf.len() - self.charged;
        let want = need.max(CHARGE_STEP);
        for (attempt, extra) in [want, need, need].into_iter().enumerate() {
            if attempt == 2 {
                relieve_memory(self.shared);
            }
            let grown = match &mut self.permit {
                Some(p) => p.grow(extra).is_ok(),
                None => match self.shared.budget.try_reserve(Some(self.tenant), extra) {
                    Ok(p) => {
                        self.permit = Some(p);
                        true
                    }
                    Err(_) => false,
                },
            };
            if grown {
                self.charged += extra;
                return true;
            }
        }
        false
    }

    /// Sends the buffered bytes as one chunk, transferring their memory
    /// charge to the message (released by the connection thread after
    /// the frame is written). Returns false when the receiver is gone.
    fn flush_chunk(&mut self) -> bool {
        let Some(tx) = self.tx else { return true };
        if self.buf.is_empty() {
            return true;
        }
        let bytes = std::mem::take(&mut self.buf);
        let permit = self.permit.take();
        self.charged = 0;
        if tx.send(StreamMsg::Chunk(bytes, permit)).is_err() {
            self.fail = Some(SinkFail::Receiver);
            return false;
        }
        true
    }
}

impl MatchSink for ChunkSink<'_> {
    fn on_match(&mut self, m: Match<'_>) -> std::ops::ControlFlow<()> {
        self.buf.extend_from_slice(m.bytes());
        self.buf.push(b'\n');
        self.matches += 1;
        if self.tx.is_some() {
            self.checksum.update(m.bytes());
            self.checksum.update(b"\n");
        }
        if !self.ensure_charged() {
            if self.tx.is_some() {
                // Streaming: shed memory by shipping what we have now
                // (an undersized chunk), then retry the charge for a
                // fresh buffer on the next match.
                self.shared
                    .budget
                    .forced_streams
                    .fetch_add(1, Ordering::Relaxed);
                if !self.flush_chunk() {
                    return std::ops::ControlFlow::Break(());
                }
                return std::ops::ControlFlow::Continue(());
            }
            self.fail = Some(SinkFail::Memory);
            return std::ops::ControlFlow::Break(());
        }
        if self.tx.is_some() && self.buf.len() >= self.chunk_bytes && !self.flush_chunk() {
            return std::ops::ControlFlow::Break(());
        }
        std::ops::ControlFlow::Continue(())
    }
}

/// The `jsonski serve` daemon. Bind, then [`run`](Server::run); trip the
/// [shutdown token](Server::shutdown_token) (e.g. from a SIGTERM handler)
/// to drain and return.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    addr: String,
}

impl Server {
    /// Binds a TCP listener on `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// The socket `bind` failure.
    pub fn bind_tcp(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?.to_string();
        Server::assemble(Listener::Tcp(listener), local, config)
    }

    /// Binds a unix-domain listener at `path` (removed first if stale).
    ///
    /// # Errors
    ///
    /// The socket `bind` failure.
    #[cfg(unix)]
    pub fn bind_unix(path: &str, config: ServeConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        Server::assemble(Listener::Unix(listener), path.to_string(), config)
    }

    fn assemble(listener: Listener, addr: String, config: ServeConfig) -> std::io::Result<Server> {
        let metrics = Arc::new(Metrics::new());
        let dispatcher =
            Dispatcher::new(config.max_queue, config.tenant_quota, Arc::clone(&metrics));
        let cache_digest = config.cache_digest();
        let budget = MemBudget::with_tenant_cap(config.memory_budget, config.tenant_memory_budget);
        let cache = QueryCache::new(config.cache_capacity).with_budget(Arc::clone(&budget));
        let corpus = match &config.corpus_dir {
            Some(dir) => Some(Arc::new(
                CorpusStore::new(
                    dir.clone(),
                    config.index_cache.clone(),
                    &config.engine_config,
                )?
                .with_budget(Arc::clone(&budget)),
            )),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache_digest,
            dispatcher,
            cache,
            corpus,
            stats: ServeStats::default(),
            metrics,
            budget,
            shutdown: CancellationToken::new(),
            draining: AtomicBool::new(false),
            config,
        });
        Ok(Server {
            listener,
            shared,
            addr,
        })
    }

    /// The bound address (`ip:port` for TCP — useful after binding port 0 —
    /// or the socket path for unix).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// The token that initiates graceful drain; wire it to a signal
    /// handler. Safe to cancel from any thread.
    pub fn shutdown_token(&self) -> CancellationToken {
        self.shared.shutdown.clone()
    }

    /// Lifetime counters (shared with in-flight scrapes).
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Runs the accept loop on the calling thread until the shutdown token
    /// trips, then drains: stops accepting, joins every connection thread
    /// (each finishes its in-flight request through the worker pool), then
    /// retires the workers.
    ///
    /// # Errors
    ///
    /// Listener configuration failures; per-connection I/O errors are
    /// contained in their connection threads.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let shared = self.shared;
        // Startup index warm: pay the classification cost before the
        // first request instead of on it.
        if shared.config.index_warm {
            if let Some(corpus) = &shared.corpus {
                for (name, outcome) in corpus.warm() {
                    match outcome {
                        Ok(records) => {
                            eprintln!("jsonski serve: warmed index for {name} ({records} records)")
                        }
                        Err(why) => {
                            eprintln!("jsonski serve: index warm failed for {name}: {why}")
                        }
                    }
                }
            }
        }
        // Worker pool.
        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for _ in 0..shared.config.workers.max(1) {
            let dispatcher = Arc::clone(&shared.dispatcher);
            workers.push(std::thread::spawn(move || {
                while let Some(job) = dispatcher.next_job() {
                    job();
                    dispatcher.finish();
                }
            }));
        }
        // Accept loop (non-blocking + poll so the shutdown token is
        // honored within one tick even with no inbound traffic).
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let conns: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        while !shared.shutdown.is_cancelled() {
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        // Streamed responses are several back-to-back
                        // writes (header, chunks, trailer); Nagle holding
                        // the short tail segments behind delayed ACKs adds
                        // ~40ms per response, so turn it off.
                        s.set_nodelay(true).ok();
                        Some(Conn::Tcp(s))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                #[cfg(unix)]
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Unix(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                Some(conn) => {
                    ServeStats::bump(&shared.stats.connections);
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || serve_connection(conn, &shared));
                    let mut guard = conns.lock().unwrap();
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // --- Drain. ---
        shared.draining.store(true, Ordering::SeqCst);
        // Connection threads need live workers to finish in-flight
        // requests, so join them first.
        for handle in conns.into_inner().unwrap() {
            let _ = handle.join();
        }
        // Queue is now quiescent: nothing can enqueue. Retire the pool.
        shared.dispatcher.shutdown();
        for w in workers {
            let _ = w.join();
        }
        // Index rebuilds are fire-and-forget for requests, not for drain:
        // join them so shutdown never leaks a half-written tmp writer.
        if let Some(corpus) = &shared.corpus {
            corpus.drain();
        }
        let s = &shared.stats;
        Ok(ServeSummary {
            requests: s.requests.load(Ordering::Relaxed),
            ok: s.ok.load(Ordering::Relaxed),
            shed: s.shed_queue.load(Ordering::Relaxed)
                + s.shed_tenant.load(Ordering::Relaxed)
                + s.shed_memory.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
        })
    }
}

/// Reads one frame under the slow-loris clock: OS read timeouts at the
/// frame boundary are idle ticks (return `Ok(None)` so the caller can
/// check drain state); timeouts *mid-frame* burn the stall budget and
/// then kill the connection.
fn read_frame_guarded(conn: &mut Conn, shared: &Shared) -> Result<Option<Vec<u8>>, ProtocolError> {
    struct GuardedReader<'a> {
        conn: &'a mut Conn,
        at_frame_start: bool,
        read_any: bool,
        stalls_left: u32,
    }
    impl Read for GuardedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                match self.conn.read(buf) {
                    Ok(n) => {
                        if n > 0 {
                            self.read_any = true;
                        }
                        return Ok(n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if self.at_frame_start && !self.read_any {
                            // Idle between frames: not a stall.
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WouldBlock,
                                "idle tick",
                            ));
                        }
                        if self.stalls_left == 0 {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "stall budget exhausted",
                            ));
                        }
                        self.stalls_left -= 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    conn.set_read_timeout(Some(shared.config.read_timeout)).ok();
    let mut reader = GuardedReader {
        conn,
        at_frame_start: true,
        read_any: false,
        stalls_left: shared.config.stall_budget,
    };
    match read_frame(&mut reader, shared.config.max_frame_bytes) {
        Ok(frame) => Ok(frame),
        Err(ProtocolError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
            // Idle tick at a frame boundary: no bytes consumed.
            Ok(None)
        }
        Err(ProtocolError::Io(e)) if e.kind() == std::io::ErrorKind::TimedOut => {
            Err(ProtocolError::Stalled)
        }
        Err(e) => Err(e),
    }
}

/// Why [`write_frame_guarded`] gave up on a connection.
enum WriteClose {
    /// The peer stopped draining its receive buffer past the stall
    /// budget; counted in `stalled_writes`.
    Stalled,
    /// The transport failed outright (peer gone).
    Io,
}

/// Writes one response frame under the write-side stall clock: OS write
/// timeouts burn the budget, then the connection is closed with a typed
/// reason instead of pinning the thread behind a peer that reads nothing.
/// The frame is still a single logical write — the peer observes a prefix
/// of it or all of it, never interleaving.
fn write_frame_guarded(conn: &mut Conn, shared: &Shared, payload: &[u8]) -> Result<(), WriteClose> {
    conn.set_write_timeout(Some(shared.config.write_timeout))
        .ok();
    let frame = crate::protocol::encode_frame(payload);
    let mut off = 0usize;
    let mut stalls_left = shared.config.write_stall_budget;
    while off < frame.len() {
        match conn.write(&frame[off..]) {
            Ok(0) => return Err(WriteClose::Io),
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stalls_left == 0 {
                    return Err(WriteClose::Stalled);
                }
                stalls_left -= 1;
            }
            Err(_) => return Err(WriteClose::Io),
        }
    }
    conn.flush().map_err(|_| WriteClose::Io)
}

/// One connection's lifetime: frames in, frames out, until EOF, a
/// protocol violation, or drain.
fn serve_connection(mut conn: Conn, shared: &Arc<Shared>) {
    loop {
        match read_frame_guarded(&mut conn, shared) {
            // Idle tick: between frames. Close if draining, else keep
            // listening.
            Ok(None) if shared.draining.load(Ordering::SeqCst) => return,
            Ok(None) => {
                // `read_frame_guarded` returns None both for clean EOF and
                // for an idle tick; distinguish by asking the socket
                // again — a dead socket yields EOF immediately. Simpler:
                // an idle tick costs nothing, so just loop. Clean EOF is
                // surfaced as Ok(None) by `read_frame` only on a true
                // zero-byte read, which `GuardedReader` forwards — so
                // this arm also ends EOF'd connections via the next
                // iteration's error or repeated None. To avoid a spin on
                // EOF, probe liveness cheaply here.
                if is_eof(&mut conn) {
                    return;
                }
                continue;
            }
            Ok(Some(payload)) => {
                ServeStats::bump(&shared.stats.requests);
                match handle_frame(&payload, &mut conn, shared) {
                    Ok(()) => {}
                    Err(WriteClose::Stalled) => {
                        // The peer stopped draining its receive buffer:
                        // the write stall budget bounds how long it can
                        // hold this thread, mirroring the read side.
                        ServeStats::bump(&shared.stats.stalled_writes);
                        return;
                    }
                    Err(WriteClose::Io) => {
                        // Peer gone mid-write: drop the connection. Each
                        // frame was a single logical write, so the peer
                        // saw a prefix of the frame sequence — never a
                        // reordered or interleaved frame.
                        return;
                    }
                }
            }
            Err(ProtocolError::Stalled) => {
                ServeStats::bump(&shared.stats.stalled_conns);
                return;
            }
            Err(_) => {
                ServeStats::bump(&shared.stats.protocol_errors);
                return;
            }
        }
    }
}

/// Distinguishes clean EOF from an idle timeout: a zero-timeout peek
/// returning `Ok(0)` means the peer closed.
fn is_eof(conn: &mut Conn) -> bool {
    // A connection at a frame boundary with nothing buffered: try a
    // non-blocking-ish 1ms read of 1 byte. Ok(0) = closed. WouldBlock /
    // TimedOut = alive but idle. Any byte read would be a protocol
    // desync, so treat it as fatal too (it cannot happen: read_frame
    // consumed whole frames only).
    conn.set_read_timeout(Some(Duration::from_millis(1))).ok();
    let mut byte = [0u8; 1];
    match conn.read(&mut byte) {
        Ok(0) => true,
        Ok(_) => true, // desync — close defensively
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            false
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => false,
        Err(_) => true,
    }
}

/// Parses and dispatches one request frame, writing the response frame
/// (or frame sequence, for streamed responses) to the connection.
fn handle_frame(payload: &[u8], conn: &mut Conn, shared: &Arc<Shared>) -> Result<(), WriteClose> {
    let req = match parse_request(payload) {
        Ok(r) => r,
        Err(e) => {
            ServeStats::bump(&shared.stats.bad_request);
            let frame =
                encode_response(Status::BadRequest, b"", 0, 0, 0, Some(&e.to_string()), b"");
            return write_frame_guarded(conn, shared, &frame);
        }
    };
    match req.op {
        Op::Ping => {
            ServeStats::bump(&shared.stats.pings);
            let frame = encode_response(Status::Ok, &req.id, 0, 0, 0, Some("pong"), b"");
            write_frame_guarded(conn, shared, &frame)
        }
        Op::Metrics => {
            let frame = scrape_metrics(&req, shared);
            write_frame_guarded(conn, shared, &frame)
        }
        Op::Query => handle_query(req, conn, shared),
    }
}

/// Serves `op: "metrics"`: the serve counters, the cache counters, and
/// the engine's own [`Metrics`] registry, as text or JSON.
fn scrape_metrics(req: &Request, shared: &Arc<Shared>) -> Vec<u8> {
    if !shared.config.metrics_endpoint {
        ServeStats::bump(&shared.stats.bad_request);
        return encode_response(
            Status::BadRequest,
            &req.id,
            0,
            0,
            0,
            Some("metrics endpoint disabled (start with --metrics-endpoint)"),
            b"",
        );
    }
    ServeStats::bump(&shared.stats.scrapes);
    let snapshot = shared.metrics.snapshot();
    // Index-cache counters render even without a corpus store (all
    // zeros), so scrapers see a stable schema.
    let zero = jsonski::IndexStats::new();
    let index_pairs = match &shared.corpus {
        Some(c) => c.stats().pairs(),
        None => zero.pairs(),
    };
    let mem_pairs = shared.budget.pairs();
    let body = if req.metrics_json {
        let mut index_json = String::from("{");
        for (i, (name, v)) in index_pairs.iter().enumerate() {
            if i > 0 {
                index_json.push_str(", ");
            }
            index_json.push_str(&format!("\"{name}\": {v}"));
        }
        index_json.push('}');
        let mut mem_json = String::from("{");
        for (i, (name, v)) in mem_pairs.iter().enumerate() {
            if i > 0 {
                mem_json.push_str(", ");
            }
            mem_json.push_str(&format!("\"{name}\": {v}"));
        }
        mem_json.push('}');
        format!(
            "{{\"serve\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}}, \"index\": {}, \"memory\": {}, \"engine\": {}}}\n",
            shared.stats.render_json(),
            shared.cache.hits(),
            shared.cache.misses(),
            shared.cache.len(),
            index_json,
            mem_json,
            snapshot.to_json(),
        )
    } else {
        let mut index_text = String::new();
        for (name, v) in &index_pairs {
            index_text.push_str(&format!("{name} {v}\n"));
        }
        let mut mem_text = String::new();
        for (name, v) in &mem_pairs {
            mem_text.push_str(&format!("{name} {v}\n"));
        }
        format!(
            "{}cache_hits {}\ncache_misses {}\ncache_entries {}\n{}{}# engine metrics\n{}",
            shared.stats.render_text(),
            shared.cache.hits(),
            shared.cache.misses(),
            shared.cache.len(),
            index_text,
            mem_text,
            snapshot,
        )
    };
    encode_response(Status::Ok, &req.id, 0, 0, 0, None, body.as_bytes())
}

/// A zero-counter [`WorkResult`] for watchdog-fabricated outcomes.
fn synthetic_result(status: Status, reason: &str) -> WorkResult {
    WorkResult {
        status,
        matches: 0,
        records: 0,
        skipped: 0,
        reason: Some(reason.to_string()),
        body: Vec::new(),
        checksum: 0,
        permit: None,
    }
}

/// Receives until the worker's `Done`, discarding chunks (their permits
/// release as they drop). Called after cancellation or a failed write,
/// so the worker — possibly blocked on a full chunk channel — always
/// unblocks and the permit lifetime covers the whole evaluation.
fn drain_until_done(rx: &mpsc::Receiver<StreamMsg>) -> Option<WorkResult> {
    loop {
        match rx.recv() {
            Ok(StreamMsg::Chunk(..)) => continue,
            Ok(StreamMsg::Done(r)) => return Some(r),
            Err(_) => return None,
        }
    }
}

/// The full query path: drain gate → admission → memory charge → enqueue
/// → deadline watchdog → response write(s). The tenant permit (for
/// admitted requests) is held until every response frame is written, so
/// a slow-reading client occupies its own quota, not the fleet's.
fn handle_query(req: Request, conn: &mut Conn, shared: &Arc<Shared>) -> Result<(), WriteClose> {
    if shared.draining.load(Ordering::SeqCst) {
        ServeStats::bump(&shared.stats.draining_rejects);
        let frame = encode_response(
            Status::Draining,
            &req.id,
            0,
            0,
            0,
            Some("server is draining"),
            b"",
        );
        return write_frame_guarded(conn, shared, &frame);
    }
    let permit = match shared.dispatcher.admit(&req.tenant) {
        Ok(p) => {
            ServeStats::bump(&shared.stats.admitted);
            p
        }
        Err(reason) => {
            match reason {
                ShedReason::QueueFull => ServeStats::bump(&shared.stats.shed_queue),
                ShedReason::TenantQuota => ServeStats::bump(&shared.stats.shed_tenant),
                ShedReason::Memory => ServeStats::bump(&shared.stats.shed_memory),
            }
            let frame = encode_response(Status::Shed, &req.id, 0, 0, 0, Some(reason.name()), b"");
            return write_frame_guarded(conn, shared, &frame);
        }
    };
    let shed_memory = |conn: &mut Conn, denied: &MemDenied| -> Result<(), WriteClose> {
        ServeStats::bump(&shared.stats.shed_memory);
        let frame = encode_response(
            Status::Shed,
            &req.id,
            0,
            0,
            0,
            Some(ShedReason::Memory.name()),
            denied.to_string().as_bytes(),
        );
        write_frame_guarded(conn, shared, &frame)
    };
    // Resolve the evaluation input on the connection thread (inside the
    // tenant permit, so corpus reads count against the tenant's quota),
    // charging resident bytes to the memory budget. A corpus whose bytes
    // the budget refuses even after eviction is *streamed from disk*
    // with a bounded read buffer instead of shed — the ladder's
    // bounded-input rung. The index lookup can only produce `Some` for a
    // fully verified index; every failure mode falls back to `None` =
    // full classification.
    let (input, index) = if req.corpus.is_empty() {
        let body_permit = if req.body.is_empty() {
            None
        } else {
            match reserve_with_relief(shared, Some(&req.tenant), req.body.len()) {
                Ok(p) => Some(p),
                Err(denied) => {
                    let write = shed_memory(conn, &denied);
                    drop(permit);
                    return write;
                }
            }
        };
        (EvalInput::Slice(req.body.clone(), body_permit), None)
    } else {
        let resolved = match &shared.corpus {
            Some(store) => store
                .corpus_len(&req.corpus)
                .map(|(path, len)| (Arc::clone(store), path, len)),
            None => Err(CorpusError::NotConfigured),
        };
        match resolved {
            Ok((store, path, len)) => {
                match reserve_with_relief(shared, Some(&req.tenant), len as usize) {
                    Ok(corpus_permit) => match store.read_corpus(&req.corpus) {
                        Ok(bytes) => {
                            let index = store.index_for(&req.corpus, &bytes);
                            (EvalInput::Slice(bytes, Some(corpus_permit)), index)
                        }
                        Err(e) => {
                            ServeStats::bump(&shared.stats.corpus_not_found);
                            let frame = encode_response(
                                Status::NotFound,
                                &req.id,
                                0,
                                0,
                                0,
                                Some(&e.to_string()),
                                b"",
                            );
                            let write = write_frame_guarded(conn, shared, &frame);
                            drop(permit);
                            return write;
                        }
                    },
                    Err(_) => {
                        // Bounded-input fallback: evaluate straight off
                        // the file with a chunk-sized read buffer. Only
                        // that buffer is charged; a refusal of even the
                        // buffer sheds.
                        shared
                            .budget
                            .stream_fallbacks
                            .fetch_add(1, Ordering::Relaxed);
                        let buf_permit = match reserve_with_relief(
                            shared,
                            Some(&req.tenant),
                            shared.config.chunk_bytes.max(1),
                        ) {
                            Ok(p) => Some(p),
                            Err(denied) => {
                                let write = shed_memory(conn, &denied);
                                drop(permit);
                                return write;
                            }
                        };
                        (EvalInput::File(path, buf_permit), None)
                    }
                }
            }
            Err(e) => {
                ServeStats::bump(&shared.stats.corpus_not_found);
                let frame = encode_response(
                    Status::NotFound,
                    &req.id,
                    0,
                    0,
                    0,
                    Some(&e.to_string()),
                    b"",
                );
                let write = write_frame_guarded(conn, shared, &frame);
                drop(permit);
                return write;
            }
        }
    };
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.config.default_deadline)
        .min(shared.config.max_deadline);
    let req_token = CancellationToken::new();
    // Capacity 2: the worker runs at most two chunks ahead of the socket
    // (blocking-send backpressure), so a streamed response holds at most
    // ~3 chunk buffers regardless of the match set.
    let (tx, rx) = mpsc::sync_channel::<StreamMsg>(2);
    let streaming = req.stream;
    {
        let token = req_token.clone();
        let query = req.query.clone();
        let tenant = req.tenant.clone();
        shared.dispatcher.enqueue(Box::new({
            let shared = Arc::clone(shared);
            move || {
                let tx_chunks = if streaming { Some(&tx) } else { None };
                let result = evaluate_request(
                    &shared, &query, &tenant, input, index, deadline, &token, tx_chunks,
                );
                // The watchdog drains to `Done` before giving up, so a
                // blocking send cannot wedge; a dropped channel means
                // the connection is gone, which is fine.
                let _ = tx.send(StreamMsg::Done(result));
            }
        }));
    }
    // Deadline watchdog: the connection thread itself. The clock covers
    // queue wait AND evaluation; chunk frames are written as they
    // arrive, each under the write-stall guard.
    let started = std::time::Instant::now();
    let grace = deadline + Duration::from_millis(50);
    let mut streamed = false;
    // On a failed write the worker may still be running (and blocked on
    // the chunk channel): cancel and drain so its buffers release.
    macro_rules! abort_write {
        ($w:expr) => {{
            req_token.cancel();
            let _ = drain_until_done(&rx);
            drop(permit);
            return Err($w);
        }};
    }
    let result = loop {
        let left = grace.saturating_sub(started.elapsed());
        match rx.recv_timeout(left) {
            Ok(StreamMsg::Chunk(bytes, chunk_permit)) => {
                if !streamed {
                    let header = encode_stream_header(&req.id);
                    if let Err(w) = write_frame_guarded(conn, shared, &header) {
                        drop(chunk_permit);
                        abort_write!(w);
                    }
                    streamed = true;
                }
                let frame = encode_stream_chunk(&bytes);
                drop(bytes);
                if let Err(w) = write_frame_guarded(conn, shared, &frame) {
                    drop(chunk_permit);
                    abort_write!(w);
                }
                drop(chunk_permit);
            }
            Ok(StreamMsg::Done(r)) => break r,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                req_token.cancel();
                // The worker observes the token at its next record
                // boundary and replies promptly; block for that reply so
                // the permit lifetime covers the whole evaluation.
                break match drain_until_done(&rx) {
                    Some(mut r) => {
                        // Whatever the worker managed, the request missed
                        // its deadline: discard partial output, report
                        // 408. (Chunks already on the wire are voided by
                        // the trailer's status.)
                        r.status = Status::Timeout;
                        r.reason = Some("deadline exceeded".to_string());
                        r.body = Vec::new();
                        r.permit = None;
                        r
                    }
                    None => synthetic_result(Status::Timeout, "deadline exceeded"),
                };
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break synthetic_result(Status::Panic, "worker vanished")
            }
        }
    };
    match result.status {
        Status::Ok => ServeStats::bump(&shared.stats.ok),
        Status::Timeout => ServeStats::bump(&shared.stats.timeouts),
        Status::EvalFailed => ServeStats::bump(&shared.stats.eval_failed),
        Status::Panic => ServeStats::bump(&shared.stats.panics),
        Status::BadRequest => ServeStats::bump(&shared.stats.bad_request),
        Status::Shed => ServeStats::bump(&shared.stats.shed_memory),
        _ => {}
    }
    let frame = if streamed {
        ServeStats::bump(&shared.stats.streamed);
        encode_stream_trailer(
            result.status,
            &req.id,
            result.matches,
            result.records,
            result.skipped,
            result.reason.as_deref(),
            result.checksum,
        )
    } else {
        // No chunks went out (non-stream client, empty body, or an error
        // before the first flush): single-frame response, the wire
        // default.
        encode_response(
            result.status,
            &req.id,
            result.matches,
            result.records,
            result.skipped,
            result.reason.as_deref(),
            &result.body,
        )
    };
    let write = write_frame_guarded(conn, shared, &frame);
    drop(permit);
    write
}

/// Worker-side evaluation: compiled-query cache → serial pipeline over the
/// evaluation input → typed result. Runs under a whole-request unwind
/// guard on top of the pipeline's per-record `catch_unwind`.
///
/// For a stream-opted request (`tx` set) the sink ships body chunks
/// through the channel as they fill and the returned result carries the
/// trailer checksum instead of a body. For single-frame delivery the
/// body travels in the result together with its memory charge.
#[allow(clippy::too_many_arguments)]
fn evaluate_request(
    shared: &Shared,
    query: &str,
    tenant: &str,
    input: EvalInput,
    index: Option<Arc<StructuralIndex>>,
    deadline: Duration,
    token: &CancellationToken,
    tx: Option<&mpsc::SyncSender<StreamMsg>>,
) -> WorkResult {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let engine = match shared
            .cache
            .get_or_compile(query, shared.cache_digest, |q| {
                JsonSki::compile(q).map(|e| e.with_config(shared.config.engine_config))
            }) {
            Ok(e) => e,
            Err(e) => {
                return synthetic_result(Status::BadRequest, &format!("query parse error: {e}"))
            }
        };
        // Layer the per-request deadline onto the configured limits; the
        // engine checks it at container boundaries (so a single huge
        // record cannot overstay), the pipeline at record boundaries.
        let limits = shared.config.limits.deadline(deadline);
        let engine = (*engine).clone().with_limits(limits);
        let mut sink = ChunkSink::new(shared, tenant, tx);
        let pipe = Pipeline::new()
            .workers(1)
            .error_policy(shared.config.error_policy)
            .limits(limits)
            .metrics(Arc::clone(&shared.metrics))
            .cancel_token(token.clone());
        let run = match &input {
            // A verified index: records come from its spans and the
            // engine consumes its pre-built bitmaps instead of
            // re-classifying. Results are byte-identical to the uncached
            // path by construction (strict validation still sees every
            // input byte).
            EvalInput::Slice(body, _) => match index.as_deref() {
                Some(idx) => {
                    let stats = shared.corpus.as_ref().map(|c| c.stats().as_ref());
                    let indexed = IndexedJsonSki::new(&engine, idx, stats);
                    let mut source = IndexedRecords::new(body, idx);
                    pipe.run(&indexed, &mut source, &mut sink)
                }
                None => {
                    let mut source = SliceRecords::new(body);
                    pipe.run(&engine, &mut source, &mut sink)
                }
            },
            // Budget-refused corpus: stream it straight off disk with a
            // bounded read buffer (no index; classification runs per
            // record). Byte-identical to the resident path because the
            // pipeline sees the same record sequence.
            EvalInput::File(path, _) => {
                let file = match std::fs::File::open(path) {
                    Ok(f) => f,
                    Err(e) => {
                        return synthetic_result(
                            Status::EvalFailed,
                            &format!("corpus open failed: {e}"),
                        )
                    }
                };
                let mut source =
                    ChunkedRecords::with_buffer_size(file, shared.config.chunk_bytes.max(16))
                        .limits(limits)
                        .metrics(Arc::clone(&shared.metrics))
                        .cancel_token(token.clone());
                pipe.run(&engine, &mut source, &mut sink)
            }
        };
        match run {
            Ok(summary) if summary.cancelled => WorkResult {
                // The only canceller of a request token is its deadline
                // watchdog (drain never cancels in-flight requests).
                status: Status::Timeout,
                matches: 0,
                records: summary.records,
                skipped: summary.failed + summary.resyncs,
                reason: Some("deadline exceeded".to_string()),
                body: Vec::new(),
                checksum: 0,
                permit: None,
            },
            Ok(summary) => match sink.fail {
                // Materialized response the budget refused even after
                // eviction: typed memory shed, partial output discarded.
                Some(SinkFail::Memory) => synthetic_result(Status::Shed, ShedReason::Memory.name()),
                // The connection thread is gone; nothing will be
                // written, the status is for the log only.
                Some(SinkFail::Receiver) => {
                    synthetic_result(Status::EvalFailed, "client disconnected mid-stream")
                }
                None => {
                    if tx.is_some() && !sink.flush_chunk() {
                        return synthetic_result(
                            Status::EvalFailed,
                            "client disconnected mid-stream",
                        );
                    }
                    let body = std::mem::take(&mut sink.buf);
                    let permit = sink.permit.take();
                    WorkResult {
                        status: Status::Ok,
                        matches: sink.matches,
                        records: summary.records,
                        skipped: summary.failed + summary.resyncs,
                        reason: None,
                        checksum: if tx.is_some() {
                            sink.checksum.finish()
                        } else {
                            0
                        },
                        body,
                        permit,
                    }
                }
            },
            Err(EngineError::Limit(LimitExceeded::Deadline { .. })) => {
                synthetic_result(Status::Timeout, "deadline exceeded")
            }
            Err(EngineError::Panic { payload, .. }) => {
                synthetic_result(Status::Panic, &format!("evaluation panicked: {payload}"))
            }
            Err(e) => synthetic_result(Status::EvalFailed, &e.to_string()),
        }
    }));
    outcome.unwrap_or_else(|_| synthetic_result(Status::Panic, "request evaluation panicked"))
}
