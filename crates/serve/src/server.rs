//! The daemon: listener, connection threads, worker pool, and drain.
//!
//! # Threading model
//!
//! One acceptor (the thread that called [`Server::run`]), one thread per
//! connection, and a fixed pool of evaluation workers fed through the
//! [`Dispatcher`]. A connection thread never
//! evaluates; it reads frames, runs admission, hands the body to the pool,
//! and waits for the result with the request's deadline as its own
//! watchdog. That split is what makes the deadline unconditional: even a
//! request stuck behind a full queue times out, because the clock starts
//! at admission, not at evaluation.
//!
//! # Robustness invariants
//!
//! * **No truncated frames.** A response is assembled fully in memory and
//!   written by its connection thread with a single `write_all`. The peer
//!   sees the whole frame or a dropped connection — never a prefix.
//! * **No pinned workers.** Deadlines cancel through the engine's
//!   [`CancellationToken`], checked at record boundaries; socket reads
//!   carry an OS-level timeout with a budgeted stall allowance
//!   (slow-loris defense).
//! * **No lost work on drain.** Shutdown stops accepting, answers new
//!   requests with `503 draining`, and joins every connection thread —
//!   each of which finishes its in-flight request through the worker pool
//!   before exiting.
//! * **No fleet kill from one input.** Evaluation runs under the
//!   pipeline's per-record `catch_unwind` plus a whole-request unwind
//!   guard; a poisoned record costs its request a `500`, nothing more.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use jsonski::{
    digest_parts, CancellationToken, EngineConfig, EngineError, ErrorPolicy, IndexedJsonSki,
    IndexedRecords, JsonSki, LimitExceeded, Match, MatchSink, Metrics, Pipeline, ResourceLimits,
    SliceRecords, StructuralIndex, ValidationMode,
};

use crate::admission::{Dispatcher, TenantPermit};
use crate::cache::QueryCache;
use crate::corpus::{CorpusError, CorpusStore};
use crate::protocol::{
    encode_response, parse_request, read_frame, Op, ProtocolError, Request, ShedReason, Status,
    DEFAULT_MAX_FRAME_BYTES,
};

/// Server tuning knobs. Construct with [`ServeConfig::default`] and adjust
/// builder-style.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Evaluation worker threads.
    pub workers: usize,
    /// Admission watermark: maximum admitted-but-unfinished requests.
    pub max_queue: usize,
    /// Maximum in-flight requests per tenant.
    pub tenant_quota: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Hard cap; client-requested deadlines are clamped to this.
    pub max_deadline: Duration,
    /// OS-level socket read timeout (one tick of the slow-loris clock).
    pub read_timeout: Duration,
    /// Mid-frame read timeouts tolerated before the connection is closed.
    pub stall_budget: u32,
    /// OS-level socket write timeout (one tick of the response-write
    /// stall clock).
    pub write_timeout: Duration,
    /// Mid-response write timeouts tolerated before the connection is
    /// closed — the write-side twin of `stall_budget`, so a client that
    /// stops draining its receive buffer cannot pin a connection thread.
    pub write_stall_budget: u32,
    /// Maximum frame payload size.
    pub max_frame_bytes: usize,
    /// Compiled-query cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Whether `op: "metrics"` scrapes are served.
    pub metrics_endpoint: bool,
    /// Engine configuration (fast-forward groups, validation, kernel) the
    /// compiled-query cache is keyed on.
    pub engine_config: EngineConfig,
    /// Per-record resource guards; the per-request deadline is layered on
    /// top of these.
    pub limits: ResourceLimits,
    /// Per-record failure policy for request bodies.
    pub error_policy: ErrorPolicy,
    /// Directory of server-stored corpora that requests may name via the
    /// `"corpus"` header field (`None` disables stored-corpus requests).
    pub corpus_dir: Option<std::path::PathBuf>,
    /// Directory for the persistent structural-index cache over stored
    /// corpora (`None` keeps the index cache memory-only).
    pub index_cache: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_queue: 64,
            tenant_quota: 16,
            default_deadline: Duration::from_millis(2000),
            max_deadline: Duration::from_millis(30_000),
            read_timeout: Duration::from_millis(250),
            stall_budget: 4,
            write_timeout: Duration::from_millis(250),
            write_stall_budget: 8,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            cache_capacity: 128,
            metrics_endpoint: false,
            engine_config: EngineConfig::default(),
            limits: ResourceLimits::default(),
            error_policy: ErrorPolicy::FailFast,
            corpus_dir: None,
            index_cache: None,
        }
    }
}

impl ServeConfig {
    /// Digest of everything baked into a cached compiled query, computed
    /// with the checkpoint format's [`digest_parts`]. Two configurations
    /// that would compile different automata never share a cache entry.
    pub fn cache_digest(&self) -> u64 {
        let cfg = &self.engine_config;
        let parts = [
            format!("g1={} g4={} g5={}", cfg.g1, cfg.g4, cfg.g5),
            match cfg.validation {
                ValidationMode::Permissive => "permissive".to_string(),
                ValidationMode::Strict => "strict".to_string(),
            },
            match cfg.kernel {
                Some(k) => format!("kernel={}", k.name()),
                None => "kernel=auto".to_string(),
            },
        ];
        digest_parts(&parts)
    }
}

/// Monotonic counters describing the server's lifetime, exposed by the
/// metrics scrape and summarized by [`ServeSummary`]. All counters are
/// relaxed atomics: cheap to bump, read-consistent enough for telemetry.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request frames parsed (any op).
    pub requests: AtomicU64,
    /// Query requests past admission control (holding a tenant permit).
    /// `admitted - ok - timeouts - eval_failed - panics` is the number of
    /// admitted queries still in flight.
    pub admitted: AtomicU64,
    /// Query requests answered `200 ok`.
    pub ok: AtomicU64,
    /// Requests rejected `400 bad_request`.
    pub bad_request: AtomicU64,
    /// Requests that hit their deadline (`408 timeout`).
    pub timeouts: AtomicU64,
    /// Requests whose body failed evaluation (`422 eval_failed`).
    pub eval_failed: AtomicU64,
    /// Requests shed for queue pressure (`429`, reason `queue_full`).
    pub shed_queue: AtomicU64,
    /// Requests shed for tenant quota (`429`, reason `tenant_quota`).
    pub shed_tenant: AtomicU64,
    /// Requests that panicked in evaluation (`500 panic`).
    pub panics: AtomicU64,
    /// Requests rejected because the server is draining (`503`).
    pub draining_rejects: AtomicU64,
    /// `op: "ping"` probes answered.
    pub pings: AtomicU64,
    /// `op: "metrics"` scrapes served.
    pub scrapes: AtomicU64,
    /// Connections dropped for protocol violations (bad frame, oversized,
    /// truncated).
    pub protocol_errors: AtomicU64,
    /// Connections closed for stalling mid-frame past the budget.
    pub stalled_conns: AtomicU64,
    /// Connections closed because the peer stopped draining its receive
    /// buffer past the response-write stall budget.
    pub stalled_writes: AtomicU64,
    /// Stored-corpus requests answered `404 not_found`.
    pub corpus_not_found: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters as `name value` scrape lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.pairs() {
            out.push_str(&format!("serve_{name} {v}\n"));
        }
        out
    }

    /// Renders the counters as a JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.pairs().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {v}"));
        }
        out.push('}');
        out
    }

    fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("admitted", self.admitted.load(Ordering::Relaxed)),
            ("ok", self.ok.load(Ordering::Relaxed)),
            ("bad_request", self.bad_request.load(Ordering::Relaxed)),
            ("timeouts", self.timeouts.load(Ordering::Relaxed)),
            ("eval_failed", self.eval_failed.load(Ordering::Relaxed)),
            ("shed_queue", self.shed_queue.load(Ordering::Relaxed)),
            ("shed_tenant", self.shed_tenant.load(Ordering::Relaxed)),
            ("panics", self.panics.load(Ordering::Relaxed)),
            (
                "draining_rejects",
                self.draining_rejects.load(Ordering::Relaxed),
            ),
            ("pings", self.pings.load(Ordering::Relaxed)),
            ("scrapes", self.scrapes.load(Ordering::Relaxed)),
            (
                "protocol_errors",
                self.protocol_errors.load(Ordering::Relaxed),
            ),
            ("stalled_conns", self.stalled_conns.load(Ordering::Relaxed)),
            (
                "stalled_writes",
                self.stalled_writes.load(Ordering::Relaxed),
            ),
            (
                "corpus_not_found",
                self.corpus_not_found.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// What [`Server::run`] reports after a graceful drain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request frames served over the lifetime.
    pub requests: u64,
    /// `200 ok` responses.
    pub ok: u64,
    /// Typed shed responses (both reasons).
    pub shed: u64,
    /// Deadline timeouts.
    pub timeouts: u64,
    /// Evaluation panics survived.
    pub panics: u64,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted connection, TCP or unix-domain, behind a common
/// `Read + Write` face.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct Shared {
    config: ServeConfig,
    cache_digest: u64,
    dispatcher: Arc<Dispatcher>,
    cache: QueryCache,
    corpus: Option<Arc<CorpusStore>>,
    stats: ServeStats,
    metrics: Arc<Metrics>,
    shutdown: CancellationToken,
    /// Set the moment drain begins: new requests get `503`, idle
    /// connections close at their next read tick.
    draining: AtomicBool,
}

/// The outcome a worker sends back to the waiting connection thread.
struct WorkResult {
    status: Status,
    matches: u64,
    records: u64,
    skipped: u64,
    reason: Option<String>,
    body: Vec<u8>,
}

/// Staging sink: accumulates match bytes as NDJSON lines. Mirrors the
/// pipeline's discard-on-failure staging — under `FailFast` an error
/// aborts the run and the whole buffer is thrown away, so a non-`ok`
/// response never carries partial output.
#[derive(Default)]
struct StageSink {
    buf: Vec<u8>,
    matches: u64,
}

impl MatchSink for StageSink {
    fn on_match(&mut self, m: Match<'_>) -> std::ops::ControlFlow<()> {
        self.buf.extend_from_slice(m.bytes());
        self.buf.push(b'\n');
        self.matches += 1;
        std::ops::ControlFlow::Continue(())
    }
}

/// The `jsonski serve` daemon. Bind, then [`run`](Server::run); trip the
/// [shutdown token](Server::shutdown_token) (e.g. from a SIGTERM handler)
/// to drain and return.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    addr: String,
}

impl Server {
    /// Binds a TCP listener on `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// The socket `bind` failure.
    pub fn bind_tcp(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?.to_string();
        Server::assemble(Listener::Tcp(listener), local, config)
    }

    /// Binds a unix-domain listener at `path` (removed first if stale).
    ///
    /// # Errors
    ///
    /// The socket `bind` failure.
    #[cfg(unix)]
    pub fn bind_unix(path: &str, config: ServeConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        Server::assemble(Listener::Unix(listener), path.to_string(), config)
    }

    fn assemble(listener: Listener, addr: String, config: ServeConfig) -> std::io::Result<Server> {
        let metrics = Arc::new(Metrics::new());
        let dispatcher =
            Dispatcher::new(config.max_queue, config.tenant_quota, Arc::clone(&metrics));
        let cache_digest = config.cache_digest();
        let cache = QueryCache::new(config.cache_capacity);
        let corpus = match &config.corpus_dir {
            Some(dir) => Some(Arc::new(CorpusStore::new(
                dir.clone(),
                config.index_cache.clone(),
                &config.engine_config,
            )?)),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache_digest,
            dispatcher,
            cache,
            corpus,
            stats: ServeStats::default(),
            metrics,
            shutdown: CancellationToken::new(),
            draining: AtomicBool::new(false),
            config,
        });
        Ok(Server {
            listener,
            shared,
            addr,
        })
    }

    /// The bound address (`ip:port` for TCP — useful after binding port 0 —
    /// or the socket path for unix).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// The token that initiates graceful drain; wire it to a signal
    /// handler. Safe to cancel from any thread.
    pub fn shutdown_token(&self) -> CancellationToken {
        self.shared.shutdown.clone()
    }

    /// Lifetime counters (shared with in-flight scrapes).
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Runs the accept loop on the calling thread until the shutdown token
    /// trips, then drains: stops accepting, joins every connection thread
    /// (each finishes its in-flight request through the worker pool), then
    /// retires the workers.
    ///
    /// # Errors
    ///
    /// Listener configuration failures; per-connection I/O errors are
    /// contained in their connection threads.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let shared = self.shared;
        // Worker pool.
        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for _ in 0..shared.config.workers.max(1) {
            let dispatcher = Arc::clone(&shared.dispatcher);
            workers.push(std::thread::spawn(move || {
                while let Some(job) = dispatcher.next_job() {
                    job();
                    dispatcher.finish();
                }
            }));
        }
        // Accept loop (non-blocking + poll so the shutdown token is
        // honored within one tick even with no inbound traffic).
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let conns: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        while !shared.shutdown.is_cancelled() {
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Tcp(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                #[cfg(unix)]
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Unix(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                Some(conn) => {
                    ServeStats::bump(&shared.stats.connections);
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || serve_connection(conn, &shared));
                    let mut guard = conns.lock().unwrap();
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // --- Drain. ---
        shared.draining.store(true, Ordering::SeqCst);
        // Connection threads need live workers to finish in-flight
        // requests, so join them first.
        for handle in conns.into_inner().unwrap() {
            let _ = handle.join();
        }
        // Queue is now quiescent: nothing can enqueue. Retire the pool.
        shared.dispatcher.shutdown();
        for w in workers {
            let _ = w.join();
        }
        // Index rebuilds are fire-and-forget for requests, not for drain:
        // join them so shutdown never leaks a half-written tmp writer.
        if let Some(corpus) = &shared.corpus {
            corpus.drain();
        }
        let s = &shared.stats;
        Ok(ServeSummary {
            requests: s.requests.load(Ordering::Relaxed),
            ok: s.ok.load(Ordering::Relaxed),
            shed: s.shed_queue.load(Ordering::Relaxed) + s.shed_tenant.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
        })
    }
}

/// Reads one frame under the slow-loris clock: OS read timeouts at the
/// frame boundary are idle ticks (return `Ok(None)` so the caller can
/// check drain state); timeouts *mid-frame* burn the stall budget and
/// then kill the connection.
fn read_frame_guarded(conn: &mut Conn, shared: &Shared) -> Result<Option<Vec<u8>>, ProtocolError> {
    struct GuardedReader<'a> {
        conn: &'a mut Conn,
        at_frame_start: bool,
        read_any: bool,
        stalls_left: u32,
    }
    impl Read for GuardedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                match self.conn.read(buf) {
                    Ok(n) => {
                        if n > 0 {
                            self.read_any = true;
                        }
                        return Ok(n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if self.at_frame_start && !self.read_any {
                            // Idle between frames: not a stall.
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WouldBlock,
                                "idle tick",
                            ));
                        }
                        if self.stalls_left == 0 {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "stall budget exhausted",
                            ));
                        }
                        self.stalls_left -= 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    conn.set_read_timeout(Some(shared.config.read_timeout)).ok();
    let mut reader = GuardedReader {
        conn,
        at_frame_start: true,
        read_any: false,
        stalls_left: shared.config.stall_budget,
    };
    match read_frame(&mut reader, shared.config.max_frame_bytes) {
        Ok(frame) => Ok(frame),
        Err(ProtocolError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
            // Idle tick at a frame boundary: no bytes consumed.
            Ok(None)
        }
        Err(ProtocolError::Io(e)) if e.kind() == std::io::ErrorKind::TimedOut => {
            Err(ProtocolError::Stalled)
        }
        Err(e) => Err(e),
    }
}

/// Why [`write_frame_guarded`] gave up on a connection.
enum WriteClose {
    /// The peer stopped draining its receive buffer past the stall
    /// budget; counted in `stalled_writes`.
    Stalled,
    /// The transport failed outright (peer gone).
    Io,
}

/// Writes one response frame under the write-side stall clock: OS write
/// timeouts burn the budget, then the connection is closed with a typed
/// reason instead of pinning the thread behind a peer that reads nothing.
/// The frame is still a single logical write — the peer observes a prefix
/// of it or all of it, never interleaving.
fn write_frame_guarded(conn: &mut Conn, shared: &Shared, payload: &[u8]) -> Result<(), WriteClose> {
    conn.set_write_timeout(Some(shared.config.write_timeout))
        .ok();
    let frame = crate::protocol::encode_frame(payload);
    let mut off = 0usize;
    let mut stalls_left = shared.config.write_stall_budget;
    while off < frame.len() {
        match conn.write(&frame[off..]) {
            Ok(0) => return Err(WriteClose::Io),
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stalls_left == 0 {
                    return Err(WriteClose::Stalled);
                }
                stalls_left -= 1;
            }
            Err(_) => return Err(WriteClose::Io),
        }
    }
    conn.flush().map_err(|_| WriteClose::Io)
}

/// One connection's lifetime: frames in, frames out, until EOF, a
/// protocol violation, or drain.
fn serve_connection(mut conn: Conn, shared: &Arc<Shared>) {
    loop {
        match read_frame_guarded(&mut conn, shared) {
            // Idle tick: between frames. Close if draining, else keep
            // listening.
            Ok(None) if shared.draining.load(Ordering::SeqCst) => return,
            Ok(None) => {
                // `read_frame_guarded` returns None both for clean EOF and
                // for an idle tick; distinguish by asking the socket
                // again — a dead socket yields EOF immediately. Simpler:
                // an idle tick costs nothing, so just loop. Clean EOF is
                // surfaced as Ok(None) by `read_frame` only on a true
                // zero-byte read, which `GuardedReader` forwards — so
                // this arm also ends EOF'd connections via the next
                // iteration's error or repeated None. To avoid a spin on
                // EOF, probe liveness cheaply here.
                if is_eof(&mut conn) {
                    return;
                }
                continue;
            }
            Ok(Some(payload)) => {
                ServeStats::bump(&shared.stats.requests);
                let (response, permit) = handle_frame(&payload, shared);
                let write = write_frame_guarded(&mut conn, shared, &response);
                // The tenant's in-flight slot covers the whole request
                // lifetime, response write included: a slow-reading
                // client occupies its own quota, not the fleet's.
                drop(permit);
                match write {
                    Ok(()) => {}
                    Err(WriteClose::Stalled) => {
                        // The peer stopped draining its receive buffer:
                        // the write stall budget bounds how long it can
                        // hold this thread, mirroring the read side.
                        ServeStats::bump(&shared.stats.stalled_writes);
                        return;
                    }
                    Err(WriteClose::Io) => {
                        // Peer gone mid-write: drop the connection. The
                        // frame was a single logical write, so the peer
                        // saw a prefix or everything — never a reordered
                        // or interleaved frame.
                        return;
                    }
                }
            }
            Err(ProtocolError::Stalled) => {
                ServeStats::bump(&shared.stats.stalled_conns);
                return;
            }
            Err(_) => {
                ServeStats::bump(&shared.stats.protocol_errors);
                return;
            }
        }
    }
}

/// Distinguishes clean EOF from an idle timeout: a zero-timeout peek
/// returning `Ok(0)` means the peer closed.
fn is_eof(conn: &mut Conn) -> bool {
    // A connection at a frame boundary with nothing buffered: try a
    // non-blocking-ish 1ms read of 1 byte. Ok(0) = closed. WouldBlock /
    // TimedOut = alive but idle. Any byte read would be a protocol
    // desync, so treat it as fatal too (it cannot happen: read_frame
    // consumed whole frames only).
    conn.set_read_timeout(Some(Duration::from_millis(1))).ok();
    let mut byte = [0u8; 1];
    match conn.read(&mut byte) {
        Ok(0) => true,
        Ok(_) => true, // desync — close defensively
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            false
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => false,
        Err(_) => true,
    }
}

/// Parses and dispatches one request frame, returning the response
/// payload (header line + body) ready for framing, plus — for admitted
/// query requests — the tenant permit the caller must hold until the
/// response write finishes.
fn handle_frame(payload: &[u8], shared: &Arc<Shared>) -> (Vec<u8>, Option<TenantPermit>) {
    let req = match parse_request(payload) {
        Ok(r) => r,
        Err(e) => {
            ServeStats::bump(&shared.stats.bad_request);
            return (
                encode_response(Status::BadRequest, b"", 0, 0, 0, Some(&e.to_string()), b""),
                None,
            );
        }
    };
    match req.op {
        Op::Ping => {
            ServeStats::bump(&shared.stats.pings);
            (
                encode_response(Status::Ok, &req.id, 0, 0, 0, Some("pong"), b""),
                None,
            )
        }
        Op::Metrics => (scrape_metrics(&req, shared), None),
        Op::Query => handle_query(req, shared),
    }
}

/// Serves `op: "metrics"`: the serve counters, the cache counters, and
/// the engine's own [`Metrics`] registry, as text or JSON.
fn scrape_metrics(req: &Request, shared: &Arc<Shared>) -> Vec<u8> {
    if !shared.config.metrics_endpoint {
        ServeStats::bump(&shared.stats.bad_request);
        return encode_response(
            Status::BadRequest,
            &req.id,
            0,
            0,
            0,
            Some("metrics endpoint disabled (start with --metrics-endpoint)"),
            b"",
        );
    }
    ServeStats::bump(&shared.stats.scrapes);
    let snapshot = shared.metrics.snapshot();
    // Index-cache counters render even without a corpus store (all
    // zeros), so scrapers see a stable schema.
    let zero = jsonski::IndexStats::new();
    let index_pairs = match &shared.corpus {
        Some(c) => c.stats().pairs(),
        None => zero.pairs(),
    };
    let body = if req.metrics_json {
        let mut index_json = String::from("{");
        for (i, (name, v)) in index_pairs.iter().enumerate() {
            if i > 0 {
                index_json.push_str(", ");
            }
            index_json.push_str(&format!("\"{name}\": {v}"));
        }
        index_json.push('}');
        format!(
            "{{\"serve\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}}, \"index\": {}, \"engine\": {}}}\n",
            shared.stats.render_json(),
            shared.cache.hits(),
            shared.cache.misses(),
            shared.cache.len(),
            index_json,
            snapshot.to_json(),
        )
    } else {
        let mut index_text = String::new();
        for (name, v) in &index_pairs {
            index_text.push_str(&format!("{name} {v}\n"));
        }
        format!(
            "{}cache_hits {}\ncache_misses {}\ncache_entries {}\n{}# engine metrics\n{}",
            shared.stats.render_text(),
            shared.cache.hits(),
            shared.cache.misses(),
            shared.cache.len(),
            index_text,
            snapshot,
        )
    };
    encode_response(Status::Ok, &req.id, 0, 0, 0, None, body.as_bytes())
}

/// The full query path: drain gate → admission → enqueue → deadline
/// watchdog → response. The returned [`TenantPermit`] (for admitted
/// requests) keeps the tenant's slot occupied until the caller has
/// written the response.
fn handle_query(req: Request, shared: &Arc<Shared>) -> (Vec<u8>, Option<TenantPermit>) {
    if shared.draining.load(Ordering::SeqCst) {
        ServeStats::bump(&shared.stats.draining_rejects);
        return (
            encode_response(
                Status::Draining,
                &req.id,
                0,
                0,
                0,
                Some("server is draining"),
                b"",
            ),
            None,
        );
    }
    let permit = match shared.dispatcher.admit(&req.tenant) {
        Ok(p) => {
            ServeStats::bump(&shared.stats.admitted);
            p
        }
        Err(reason) => {
            match reason {
                ShedReason::QueueFull => ServeStats::bump(&shared.stats.shed_queue),
                ShedReason::TenantQuota => ServeStats::bump(&shared.stats.shed_tenant),
            }
            return (
                encode_response(Status::Shed, &req.id, 0, 0, 0, Some(reason.name()), b""),
                None,
            );
        }
    };
    // Resolve a stored corpus on the connection thread (inside the
    // permit, so corpus reads count against the tenant's quota). The
    // index lookup can only produce `Some` for a fully verified index;
    // every failure mode falls back to `None` = full classification.
    let (body, index) = if req.corpus.is_empty() {
        (req.body, None)
    } else {
        let resolved = match &shared.corpus {
            Some(store) => store
                .read_corpus(&req.corpus)
                .map(|bytes| (Arc::clone(store), bytes)),
            None => Err(CorpusError::NotConfigured),
        };
        match resolved {
            Ok((store, bytes)) => {
                let index = store.index_for(&req.corpus, &bytes);
                (bytes, index)
            }
            Err(e) => {
                ServeStats::bump(&shared.stats.corpus_not_found);
                return (
                    encode_response(
                        Status::NotFound,
                        &req.id,
                        0,
                        0,
                        0,
                        Some(&e.to_string()),
                        b"",
                    ),
                    Some(permit),
                );
            }
        }
    };
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.config.default_deadline)
        .min(shared.config.max_deadline);
    let req_token = CancellationToken::new();
    let (tx, rx) = mpsc::sync_channel::<WorkResult>(1);
    {
        let shared = Arc::clone(shared);
        let token = req_token.clone();
        let query = req.query.clone();
        shared.dispatcher.enqueue(Box::new({
            let shared = Arc::clone(&shared);
            move || {
                let result =
                    evaluate_request(&shared, &query, &body, index.as_deref(), deadline, &token);
                // The watchdog may have given up and gone; a full or
                // dropped channel is fine either way.
                let _ = tx.try_send(result);
            }
        }));
    }
    // Deadline watchdog: the connection thread itself. The clock covers
    // queue wait AND evaluation.
    let result = match rx.recv_timeout(deadline + Duration::from_millis(50)) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            req_token.cancel();
            // The worker observes the token at its next record boundary
            // and replies promptly; block for that reply so the permit
            // lifetime covers the whole evaluation.
            match rx.recv() {
                Ok(mut r) => {
                    // Whatever the worker managed, the request missed its
                    // deadline: discard partial output, report 408.
                    r.status = Status::Timeout;
                    r.reason = Some("deadline exceeded".to_string());
                    r.body = Vec::new();
                    r
                }
                Err(_) => WorkResult {
                    status: Status::Timeout,
                    matches: 0,
                    records: 0,
                    skipped: 0,
                    reason: Some("deadline exceeded".to_string()),
                    body: Vec::new(),
                },
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => WorkResult {
            status: Status::Panic,
            matches: 0,
            records: 0,
            skipped: 0,
            reason: Some("worker vanished".to_string()),
            body: Vec::new(),
        },
    };
    match result.status {
        Status::Ok => ServeStats::bump(&shared.stats.ok),
        Status::Timeout => ServeStats::bump(&shared.stats.timeouts),
        Status::EvalFailed => ServeStats::bump(&shared.stats.eval_failed),
        Status::Panic => ServeStats::bump(&shared.stats.panics),
        Status::BadRequest => ServeStats::bump(&shared.stats.bad_request),
        _ => {}
    }
    let frame = encode_response(
        result.status,
        &req.id,
        result.matches,
        result.records,
        result.skipped,
        result.reason.as_deref(),
        &result.body,
    );
    (frame, Some(permit))
}

/// Worker-side evaluation: compiled-query cache → serial pipeline over the
/// request body → typed result. Runs under a whole-request unwind guard on
/// top of the pipeline's per-record `catch_unwind`.
fn evaluate_request(
    shared: &Shared,
    query: &str,
    body: &[u8],
    index: Option<&StructuralIndex>,
    deadline: Duration,
    token: &CancellationToken,
) -> WorkResult {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let engine = match shared
            .cache
            .get_or_compile(query, shared.cache_digest, |q| {
                JsonSki::compile(q).map(|e| e.with_config(shared.config.engine_config))
            }) {
            Ok(e) => e,
            Err(e) => {
                return WorkResult {
                    status: Status::BadRequest,
                    matches: 0,
                    records: 0,
                    skipped: 0,
                    reason: Some(format!("query parse error: {e}")),
                    body: Vec::new(),
                }
            }
        };
        // Layer the per-request deadline onto the configured limits; the
        // engine checks it at container boundaries (so a single huge
        // record cannot overstay), the pipeline at record boundaries.
        let limits = shared.config.limits.deadline(deadline);
        let engine = (*engine).clone().with_limits(limits);
        let mut sink = StageSink::default();
        let pipe = Pipeline::new()
            .workers(1)
            .error_policy(shared.config.error_policy)
            .limits(limits)
            .metrics(Arc::clone(&shared.metrics))
            .cancel_token(token.clone());
        let run = match index {
            // A verified index: records come from its spans and the
            // engine consumes its pre-built bitmaps instead of
            // re-classifying. Results are byte-identical to the uncached
            // path by construction (strict validation still sees every
            // input byte).
            Some(idx) => {
                let stats = shared.corpus.as_ref().map(|c| c.stats().as_ref());
                let indexed = IndexedJsonSki::new(&engine, idx, stats);
                let mut source = IndexedRecords::new(body, idx);
                pipe.run(&indexed, &mut source, &mut sink)
            }
            None => {
                let mut source = SliceRecords::new(body);
                pipe.run(&engine, &mut source, &mut sink)
            }
        };
        match run {
            Ok(summary) if summary.cancelled => WorkResult {
                // The only canceller of a request token is its deadline
                // watchdog (drain never cancels in-flight requests).
                status: Status::Timeout,
                matches: 0,
                records: summary.records,
                skipped: summary.failed + summary.resyncs,
                reason: Some("deadline exceeded".to_string()),
                body: Vec::new(),
            },
            Ok(summary) => WorkResult {
                status: Status::Ok,
                matches: sink.matches,
                records: summary.records,
                skipped: summary.failed + summary.resyncs,
                reason: None,
                body: sink.buf,
            },
            Err(EngineError::Limit(LimitExceeded::Deadline { .. })) => WorkResult {
                status: Status::Timeout,
                matches: 0,
                records: 0,
                skipped: 0,
                reason: Some("deadline exceeded".to_string()),
                body: Vec::new(),
            },
            Err(EngineError::Panic { payload, .. }) => WorkResult {
                status: Status::Panic,
                matches: 0,
                records: 0,
                skipped: 0,
                reason: Some(format!("evaluation panicked: {payload}")),
                body: Vec::new(),
            },
            Err(e) => WorkResult {
                status: Status::EvalFailed,
                matches: 0,
                records: 0,
                skipped: 0,
                reason: Some(e.to_string()),
                body: Vec::new(),
            },
        }
    }));
    outcome.unwrap_or_else(|_| WorkResult {
        status: Status::Panic,
        matches: 0,
        records: 0,
        skipped: 0,
        reason: Some("request evaluation panicked".to_string()),
        body: Vec::new(),
    })
}
