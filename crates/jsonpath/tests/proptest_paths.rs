//! Property tests for the path parser and automaton.

use jsonski_path::{ContainerKind, Path, Runtime, Status, Step};
use proptest::prelude::*;

fn step() -> BoxedStrategy<Step> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Step::Child),
        Just(Step::AnyChild),
        (0usize..100).prop_map(Step::Index),
        (0usize..50, 1usize..20).prop_map(|(a, d)| Step::Slice(a, a + d)),
        Just(Step::AnyElement),
    ]
    .boxed()
}

fn path() -> BoxedStrategy<Path> {
    prop::collection::vec(step(), 0..8)
        .prop_map(Path::new)
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(p in path()) {
        let text = p.to_string();
        let reparsed: Path = text.parse().unwrap();
        prop_assert_eq!(p, reparsed, "text: {}", text);
    }

    #[test]
    fn expected_type_is_consistent_with_steps(p in path()) {
        for k in 0..p.len() {
            let t = p.expected_type(k);
            match p.steps().get(k + 1) {
                None => prop_assert_eq!(t, jsonski_path::ExpectedType::Unknown),
                Some(s) if s.is_object_step() => {
                    prop_assert_eq!(t, jsonski_path::ExpectedType::Object)
                }
                Some(_) => prop_assert_eq!(t, jsonski_path::ExpectedType::Array),
            }
        }
    }

    #[test]
    fn index_range_agrees_with_selects_index(s in step(), idx in 0usize..120) {
        match s.index_range() {
            Some((lo, hi)) => {
                prop_assert_eq!(s.selects_index(idx), (lo..hi).contains(&idx));
            }
            None => {
                if s.is_array_step() {
                    prop_assert!(s.selects_index(idx)); // wildcard
                } else {
                    prop_assert!(!s.selects_index(idx));
                }
            }
        }
    }

    #[test]
    fn automaton_enter_exit_is_balanced(p in path(), depth in 1usize..20) {
        // Descending through arbitrary container frames and exiting them
        // always restores the runtime to its pre-descent depth.
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let before = rt.depth();
        for i in 0..depth {
            let kind = if i % 2 == 0 { ContainerKind::Array } else { ContainerKind::Object };
            rt.enter(kind, jsonski_path::State::Unmatched);
        }
        for _ in 0..depth {
            rt.exit();
        }
        prop_assert_eq!(rt.depth(), before);
        prop_assert!(rt.depth() > 0);
    }

    #[test]
    fn accept_only_at_final_step(p in path(), name in "[a-z]{1,4}") {
        if p.is_empty() {
            return Ok(());
        }
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        if let Some(Step::Child(_) | Step::AnyChild) = p.steps().first() {
            let (_, status) = rt.value_state_for_key(&name);
            if status == Status::Accept {
                prop_assert_eq!(p.len(), 1);
            }
        }
    }

    #[test]
    fn parser_rejects_or_accepts_without_panicking(s in "\\PC{0,40}") {
        let _ = Path::parse(&s);
    }
}
