//! Property tests for the path parser and automaton.

use jsonski_path::{CmpOp, ContainerKind, FilterExpr, Literal, Path, Runtime, Status, Step};
use proptest::prelude::*;

/// Steps in the parser's *normal form*, so Display → parse is identity:
/// unions have ≥2 entries (singletons parse to `Child`/`Index`), name
/// unions keep first-occurrence order, index unions are sorted + deduped.
fn step() -> BoxedStrategy<Step> {
    prop_oneof![
        simple_step(),
        filter().prop_map(Step::Filter),
        // Descendant wraps any non-descendant selector.
        prop_oneof![simple_step(), filter().prop_map(Step::Filter)]
            .prop_map(|s| Step::Descendant(Box::new(s))),
    ]
    .boxed()
}

fn simple_step() -> BoxedStrategy<Step> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Step::Child),
        Just(Step::AnyChild),
        (0usize..100).prop_map(Step::Index),
        (0usize..50, 1usize..20).prop_map(|(a, d)| Step::Slice(a, a + d)),
        Just(Step::AnyElement),
        prop::collection::vec("[a-z][a-z0-9_]{0,5}", 2..4).prop_map(|mut names| {
            let mut seen = Vec::new();
            names.retain(|n| {
                let fresh = !seen.contains(n);
                seen.push(n.clone());
                fresh
            });
            if names.len() < 2 {
                names.push(format!("{}x", names[0]));
            }
            Step::NameUnion(names)
        }),
        prop::collection::vec(0usize..30, 2..4).prop_map(|mut idx| {
            idx.sort_unstable();
            idx.dedup();
            if idx.len() < 2 {
                idx.push(idx[0] + 1);
            }
            Step::IndexUnion(idx)
        }),
    ]
    .boxed()
}

fn filter() -> BoxedStrategy<FilterExpr> {
    let rel = prop::collection::vec(
        prop_oneof![
            "[a-z][a-z0-9_]{0,5}".prop_map(Step::Child),
            (0usize..10).prop_map(Step::Index),
        ],
        0..3,
    );
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let lit = prop_oneof![
        (-10_000i64..10_000).prop_map(|n| Literal::Number(n.to_string())),
        "[a-z ]{0,8}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ];
    let cmp = prop_oneof![1 => Just(None), 3 => (op, lit).prop_map(Some)];
    (rel, cmp)
        .prop_map(|(steps, cmp)| FilterExpr::new(steps, cmp))
        .boxed()
}

fn path() -> BoxedStrategy<Path> {
    prop::collection::vec(step(), 0..8)
        .prop_map(Path::new)
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(p in path()) {
        let text = p.to_string();
        let reparsed: Path = text.parse().unwrap();
        prop_assert_eq!(p, reparsed, "text: {}", text);
    }

    #[test]
    fn expected_type_is_consistent_with_steps(p in path()) {
        for k in 0..p.len() {
            let t = p.expected_type(k);
            match p.steps().get(k + 1) {
                None => prop_assert_eq!(t, jsonski_path::ExpectedType::Unknown),
                // A descendant searches objects and arrays alike, so the
                // value before it has no single expected type.
                Some(Step::Descendant(_)) => {
                    prop_assert_eq!(t, jsonski_path::ExpectedType::Unknown)
                }
                Some(Step::Filter(_)) => prop_assert_eq!(t, jsonski_path::ExpectedType::Array),
                Some(s) if s.is_object_step() => {
                    prop_assert_eq!(t, jsonski_path::ExpectedType::Object)
                }
                Some(_) => prop_assert_eq!(t, jsonski_path::ExpectedType::Array),
            }
        }
    }

    #[test]
    fn index_range_agrees_with_selects_index(s in step(), idx in 0usize..120) {
        match s.index_range() {
            Some((lo, hi)) => {
                prop_assert!(lo < hi);
                // The range is exact for contiguous steps and a bounding
                // envelope for index unions: selection implies membership,
                // and both endpoints are genuinely selected.
                if s.selects_index(idx) {
                    prop_assert!((lo..hi).contains(&idx));
                }
                match &s {
                    Step::Index(_) | Step::Slice(..) => {
                        prop_assert_eq!(s.selects_index(idx), (lo..hi).contains(&idx));
                    }
                    Step::IndexUnion(_) => {
                        prop_assert!(s.selects_index(lo));
                        prop_assert!(s.selects_index(hi - 1));
                    }
                    other => prop_assert!(false, "unexpected ranged step {:?}", other),
                }
            }
            None => match &s {
                Step::AnyElement => prop_assert!(s.selects_index(idx)),
                // Descendants need the sticky NFA transition and filters a
                // value probe: plain index selection never fires for them,
                // even though both are array steps.
                _ => prop_assert!(!s.selects_index(idx)),
            },
        }
    }

    #[test]
    fn automaton_enter_exit_is_balanced(p in path(), depth in 1usize..20) {
        // Descending through arbitrary container frames and exiting them
        // always restores the runtime to its pre-descent depth.
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let before = rt.depth();
        for i in 0..depth {
            let kind = if i % 2 == 0 { ContainerKind::Array } else { ContainerKind::Object };
            rt.enter(kind, jsonski_path::State::UNMATCHED);
        }
        for _ in 0..depth {
            rt.exit();
        }
        prop_assert_eq!(rt.depth(), before);
        prop_assert!(rt.depth() > 0);
    }

    #[test]
    fn accept_only_at_final_step(p in path(), name in "[a-z]{1,4}") {
        if p.is_empty() {
            return Ok(());
        }
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        if let Some(Step::Child(_) | Step::AnyChild) = p.steps().first() {
            let (_, status) = rt.value_state_for_key(&name);
            if status == Status::Accept {
                prop_assert_eq!(p.len(), 1);
            }
        }
    }

    #[test]
    fn parser_rejects_or_accepts_without_panicking(s in "\\PC{0,40}") {
        let _ = Path::parse(&s);
    }
}
