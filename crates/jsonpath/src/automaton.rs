//! The pushdown query automaton of the paper's Figure 5.
//!
//! States track *matching progress*: `Progress(k)` means the enclosing
//! container matched the first `k` steps of the path. A per-container stack
//! frame holds the state and — for arrays — the element counter, exactly the
//! `(state, counter, stack)` configuration of the paper's transition rules:
//!
//! * rule **[Key]** — [`Runtime::value_state_for_key`] computes the state the
//!   attribute's value would have; descending into a container value pushes
//!   it ([`Runtime::enter`]), mirroring the push of rule `[Key]`;
//! * rule **[Val]** — [`Runtime::exit`] pops, restoring the outer state;
//! * rules **[Ary-S]**/**[Ary-E]** — entering/leaving an array frame saves
//!   and restores the counter alongside the state;
//! * rule **[Com]** — [`Runtime::increment`] bumps the counter.

use crate::ast::{ExpectedType, Path, Step};

/// Match progress of a container (a state of the query automaton).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum State {
    /// The container matched the first `k` steps of the path.
    Progress(usize),
    /// The container is irrelevant to the query (the UNMATCHED sink state).
    Unmatched,
}

/// The matching status of a candidate value, driving Algorithm 2's dispatch
/// between `goOver*` (skip), `goOver*(out)` (output), and recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// No match is possible below this value: fast-forward over it (G2).
    Unmatched,
    /// Partial progress: descend into the value.
    Matched,
    /// The full path matched: this value is a query result (G3).
    Accept,
}

/// Which kind of JSON container a stack frame represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// A JSON object (`{ ... }`).
    Object,
    /// A JSON array (`[ ... ]`).
    Array,
}

#[derive(Clone, Debug)]
struct Frame {
    kind: ContainerKind,
    state: State,
    counter: usize,
}

/// A running instance of the query automaton over one JSON record.
///
/// # Example
///
/// Evaluating `$.place.name` over `{"user": ..., "place": {"name": ...}}`:
///
/// ```
/// use jsonski_path::{ContainerKind, Path, Runtime, Status};
///
/// let path: Path = "$.place.name".parse()?;
/// let mut rt = Runtime::new(&path);
/// rt.enter_root(ContainerKind::Object);
/// assert_eq!(rt.value_state_for_key("user").1, Status::Unmatched); // skip
/// let (st, status) = rt.value_state_for_key("place");
/// assert_eq!(status, Status::Matched); // descend
/// rt.enter(ContainerKind::Object, st);
/// assert_eq!(rt.value_state_for_key("name").1, Status::Accept); // output!
/// rt.exit();
/// rt.exit();
/// assert_eq!(rt.depth(), 0);
/// # Ok::<(), jsonski_path::ParsePathError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Runtime<'p> {
    path: &'p Path,
    stack: Vec<Frame>,
}

impl<'p> Runtime<'p> {
    /// Creates an automaton instance for `path`, positioned before the root.
    pub fn new(path: &'p Path) -> Self {
        Runtime {
            path,
            stack: Vec::with_capacity(16),
        }
    }

    /// The path being evaluated.
    pub fn path(&self) -> &'p Path {
        self.path
    }

    /// Enters the root record (which matched zero steps by definition).
    ///
    /// Returns the status of the root itself: `Accept` when the path is just
    /// `$`, otherwise `Matched` if the root's kind can satisfy the first
    /// step, `Unmatched` if it cannot (e.g. `$[*]` over an object record).
    pub fn enter_root(&mut self, kind: ContainerKind) -> Status {
        let state = match self.path.steps().first() {
            None => State::Progress(0), // `$` alone: root is the match
            Some(s) => {
                let compatible = match kind {
                    ContainerKind::Object => s.is_object_step(),
                    ContainerKind::Array => s.is_array_step(),
                };
                if compatible {
                    State::Progress(0)
                } else {
                    State::Unmatched
                }
            }
        };
        self.stack.push(Frame {
            kind,
            state,
            counter: 0,
        });
        if self.path.is_empty() {
            Status::Accept
        } else if state == State::Unmatched {
            Status::Unmatched
        } else {
            Status::Matched
        }
    }

    /// Rule `[Key]`: computes the `(state, status)` the value of attribute
    /// `name` would have in the current object frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an object.
    #[inline]
    pub fn value_state_for_key(&self, name: &str) -> (State, Status) {
        self.value_state_for_key_raw(name.as_bytes())
    }

    /// Rule `[Key]` on a *raw* attribute name (escape sequences intact, as
    /// sliced straight from the input). Escaped names are unescaped for
    /// comparison only when they contain a backslash — see
    /// [`crate::names::matches`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an object.
    #[inline]
    pub fn value_state_for_key_raw(&self, raw: &[u8]) -> (State, Status) {
        let frame = self.top();
        debug_assert_eq!(frame.kind, ContainerKind::Object);
        match frame.state {
            State::Progress(k) if k < self.path.len() => match &self.path.steps()[k] {
                Step::Child(n) if crate::names::matches(raw, n) => self.advance(k),
                Step::AnyChild => self.advance(k),
                _ => (State::Unmatched, Status::Unmatched),
            },
            _ => (State::Unmatched, Status::Unmatched),
        }
    }

    /// Computes the `(state, status)` of the *current* element of the
    /// current array frame (per the counter and the step's index constraint).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an array.
    #[inline]
    pub fn element_state(&self) -> (State, Status) {
        let frame = self.top();
        debug_assert_eq!(frame.kind, ContainerKind::Array);
        match frame.state {
            State::Progress(k) if k < self.path.len() => {
                let step = &self.path.steps()[k];
                if step.is_array_step() && step.selects_index(frame.counter) {
                    self.advance(k)
                } else {
                    (State::Unmatched, Status::Unmatched)
                }
            }
            _ => (State::Unmatched, Status::Unmatched),
        }
    }

    #[inline]
    fn advance(&self, k: usize) -> (State, Status) {
        let next = k + 1;
        let status = if next == self.path.len() {
            Status::Accept
        } else {
            Status::Matched
        };
        (State::Progress(next), status)
    }

    /// Rules `[Key]`-push / `[Ary-S]`: descends into a container value whose
    /// computed state is `state`.
    #[inline]
    pub fn enter(&mut self, kind: ContainerKind, state: State) {
        self.stack.push(Frame {
            kind,
            state,
            counter: 0,
        });
    }

    /// Rules `[Val]` / `[Ary-E]`: leaves the current container, restoring the
    /// enclosing state and counter.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (unbalanced enter/exit).
    #[inline]
    pub fn exit(&mut self) {
        self.stack.pop().expect("automaton stack underflow");
    }

    /// Rule `[Com]`: advances the element counter of the current array frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an array.
    #[inline]
    pub fn increment(&mut self) {
        let frame = self.top_mut();
        debug_assert_eq!(frame.kind, ContainerKind::Array);
        frame.counter += 1;
    }

    /// The element counter of the current array frame.
    #[inline]
    pub fn counter(&self) -> usize {
        self.top().counter
    }

    /// Current nesting depth (number of frames).
    #[inline]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The expected type of a *matching* value in the current container
    /// (paper Section 3.2 / Algorithm 2 line 3), or `None` when nothing in
    /// this container can match (its state is UNMATCHED or exhausted, or the
    /// step kind is incompatible with the container kind).
    pub fn expected_type(&self) -> Option<ExpectedType> {
        let frame = self.top();
        match frame.state {
            State::Progress(k) if k < self.path.len() => {
                let step = &self.path.steps()[k];
                let compatible = match frame.kind {
                    ContainerKind::Object => step.is_object_step(),
                    ContainerKind::Array => step.is_array_step(),
                };
                compatible.then(|| self.path.expected_type(k))
            }
            _ => None,
        }
    }

    /// For an array frame: the half-open index range that can still match
    /// (`None` = wildcard/unbounded; `Some` enables G5 fast-forwarding).
    pub fn index_range(&self) -> Option<(usize, usize)> {
        let frame = self.top();
        match frame.state {
            State::Progress(k) if k < self.path.len() => self.path.steps()[k].index_range(),
            _ => None,
        }
    }

    /// Whether the current container's state is the UNMATCHED sink.
    pub fn is_unmatched(&self) -> bool {
        self.top().state == State::Unmatched
    }

    /// The path step being matched inside the current container, or `None`
    /// when the container is unmatched or past the final step.
    ///
    /// Used by the engine to decide whether the G4 fast-forward applies:
    /// after a [`Step::Child`] match no sibling attribute can match (object
    /// attribute names are unique), whereas a wildcard step keeps matching.
    pub fn current_step(&self) -> Option<&Step> {
        match self.top().state {
            State::Progress(k) => self.path.steps().get(k),
            State::Unmatched => None,
        }
    }

    /// Resets for a new record.
    pub fn reset(&mut self) {
        self.stack.clear();
    }

    #[inline]
    fn top(&self) -> &Frame {
        self.stack.last().expect("automaton stack is empty")
    }

    #[inline]
    fn top_mut(&mut self) -> &mut Frame {
        self.stack.last_mut().expect("automaton stack is empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(q: &str) -> Path {
        q.parse().unwrap()
    }

    #[test]
    fn tweet_example_from_figure_1() {
        // $.place.name over the Figure 1 tweet.
        let p = path("$.place.name");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Object), Status::Matched);
        // coordinates: array value, name mismatch -> skip
        assert_eq!(rt.value_state_for_key("coordinates").1, Status::Unmatched);
        // user: object, but name mismatch -> skip (G2 case in the paper)
        assert_eq!(rt.value_state_for_key("user").1, Status::Unmatched);
        // place: matched, descend
        let (st, status) = rt.value_state_for_key("place");
        assert_eq!(status, Status::Matched);
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.value_state_for_key("name").1, Status::Accept);
        // After the accept, bounding_box cannot match (G4 in the paper).
        assert_eq!(rt.value_state_for_key("bounding_box").1, Status::Unmatched);
        rt.exit();
        rt.exit();
        assert_eq!(rt.depth(), 0);
    }

    #[test]
    fn array_counter_and_range() {
        // $.a[2:4]
        let p = path("$.a[2:4]");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, _) = rt.value_state_for_key("a");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.index_range(), Some((2, 4)));
        assert_eq!(rt.element_state().1, Status::Unmatched); // idx 0
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Unmatched); // idx 1
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Accept); // idx 2
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Accept); // idx 3
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Unmatched); // idx 4
        rt.exit();
        rt.exit();
    }

    #[test]
    fn root_kind_mismatch_is_unmatched() {
        let p = path("$[*].text");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Object), Status::Unmatched);
        assert!(rt.is_unmatched());
    }

    #[test]
    fn root_only_path_accepts_root() {
        let p = path("$");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Array), Status::Accept);
    }

    #[test]
    fn expected_type_tracks_next_step() {
        let p = path("$.pd[*].cp[1:3].id");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.expected_type(), Some(ExpectedType::Array)); // pd is array
        let (st, _) = rt.value_state_for_key("pd");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.expected_type(), Some(ExpectedType::Object)); // elements are objects
        let (st, _) = rt.element_state();
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.expected_type(), Some(ExpectedType::Array)); // cp is array
        let (st, _) = rt.value_state_for_key("cp");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.index_range(), Some((1, 3)));
        assert_eq!(rt.expected_type(), Some(ExpectedType::Object));
    }

    #[test]
    fn expected_type_none_in_incompatible_container() {
        // Query wants an object attribute but we are inside an array.
        let p = path("$.a.b");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, _) = rt.value_state_for_key("a");
        // Suppose the data disagrees and `a` is actually an array:
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.expected_type(), None);
        assert_eq!(rt.element_state().1, Status::Unmatched);
    }

    #[test]
    fn wildcard_child_matches_any_name() {
        let p = path("$.*");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.value_state_for_key("anything").1, Status::Accept);
        assert_eq!(rt.value_state_for_key("other").1, Status::Accept);
    }

    #[test]
    fn unmatched_frame_blocks_descendants() {
        let p = path("$.a.b");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, status) = rt.value_state_for_key("zzz");
        assert_eq!(status, Status::Unmatched);
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.value_state_for_key("b").1, Status::Unmatched);
        assert!(rt.is_unmatched());
    }

    #[test]
    fn reset_clears_stack() {
        let p = path("$.a");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        rt.reset();
        assert_eq!(rt.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn exit_on_empty_stack_panics() {
        let p = path("$.a");
        let mut rt = Runtime::new(&p);
        rt.exit();
    }
}
