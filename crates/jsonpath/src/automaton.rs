//! The pushdown query automaton: the paper's Figure 5 rules, generalized to
//! the full grammar as an **NFA over path positions**.
//!
//! A [`State`] is a 64-bit set with one bit per path position `0..=len`
//! (bit `len` is the *accept* bit). For the paper's original grammar — child
//! steps, indices, slices, wildcards — every transition maps a singleton set
//! to a singleton (or empty) set, so the automaton degenerates to exactly
//! the DFA of the paper's Figure 5 and every fast-forward keeps firing.
//! Only [`Step::Descendant`] creates genuine multi-position sets: its
//! transition is *sticky* (the position stays active at every depth) while
//! also advancing on a selector hit.
//!
//! A per-container stack frame holds the state set and — for arrays — the
//! element counter, exactly the `(state, counter, stack)` configuration of
//! the paper's transition rules:
//!
//! * rule **[Key]** — [`Runtime::value_state_for_key`] computes the state the
//!   attribute's value would have; descending into a container value pushes
//!   it ([`Runtime::enter`]), mirroring the push of rule `[Key]`;
//! * rule **[Val]** — [`Runtime::exit`] pops, restoring the outer state;
//! * rules **[Ary-S]**/**[Ary-E]** — entering/leaving an array frame saves
//!   and restores the counter alongside the state;
//! * rule **[Com]** — [`Runtime::increment`] bumps the counter.
//!
//! Filter steps need to *look at the candidate value* to decide the
//! transition; [`Runtime::element_state_with`] takes a probe callback so
//! every engine shares one predicate evaluator ([`crate::filter::eval`]).

use crate::ast::{ExpectedType, FilterExpr, Path, Step};

/// Match progress of a container: the set of path positions that are still
/// live, as a 64-bit set (a state of the query NFA).
///
/// Bit `k` (`k < path.len()`) means "some traversal of the path has matched
/// the first `k` steps down to this container"; bit `path.len()` is the
/// accept bit (only ever set on *value* states returned by the transition
/// functions, never stored in a frame). The empty set is the UNMATCHED sink.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct State(u64);

impl State {
    /// The UNMATCHED sink state (the empty position set).
    pub const UNMATCHED: State = State(0);

    /// Whether this is the UNMATCHED sink (no position is live).
    #[inline]
    pub fn is_unmatched(self) -> bool {
        self.0 == 0
    }

    /// Whether path position `k` is live in this state.
    #[inline]
    pub fn contains(self, k: usize) -> bool {
        k < 64 && self.0 & (1u64 << k) != 0
    }
}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "State[")?;
        for (i, k) in positions(self.0).enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "]")
    }
}

/// Iterates the set bit indices of `bits`, lowest first.
#[inline]
fn positions(mut bits: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if bits == 0 {
            None
        } else {
            let k = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(k)
        }
    })
}

/// The matching status of a candidate value, driving Algorithm 2's dispatch
/// between `goOver*` (skip), `goOver*(out)` (output), and recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// No match is possible below this value: fast-forward over it (G2).
    Unmatched,
    /// Partial progress: descend into the value.
    Matched,
    /// The full path matched and nothing deeper can match again: this value
    /// is a query result and can be skipped-with-output (G3).
    Accept,
    /// The value is a query result **and** deeper matches are still
    /// possible (a descendant position is live): emit it, then descend.
    /// G3 skip-with-output is *not* sound here.
    AcceptAndDescend,
}

/// Which kind of JSON container a stack frame represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// A JSON object (`{ ... }`).
    Object,
    /// A JSON array (`[ ... ]`).
    Array,
}

/// Whether `step` (a non-descendant selector) matches the raw attribute
/// name `raw`.
#[inline]
fn key_matches(step: &Step, raw: &[u8]) -> bool {
    match step {
        Step::Child(n) => crate::names::matches(raw, n),
        Step::AnyChild => true,
        Step::NameUnion(ns) => ns.iter().any(|n| crate::names::matches(raw, n)),
        _ => false,
    }
}

/// Whether the inner selector of a descendant step matches the array
/// element at `idx` (`..*` selects every element as well as every member).
#[inline]
fn descendant_selects_element(
    inner: &Step,
    idx: usize,
    probe: &mut dyn FnMut(&FilterExpr) -> bool,
) -> bool {
    match inner {
        Step::Filter(expr) => probe(expr),
        Step::AnyChild => true,
        s => s.is_array_step() && s.selects_index(idx),
    }
}

/// Pure NFA transition functions over [`State`] sets.
///
/// [`Runtime`] drives these through its frame stack for the streaming
/// engines; the tree-walking baselines (DOM, tape, Pison) call them directly
/// during recursion.
impl Path {
    #[inline]
    fn accept_bit(&self) -> u64 {
        1u64 << self.len()
    }

    /// The state of the root value itself: position 0 (or the accept bit
    /// for the bare-`$` path). Callers must [`Path::prune_state`] it with
    /// the root's container kind before scanning members.
    pub fn root_state(&self) -> State {
        State(1)
    }

    /// Rule `[Key]`: the state of an attribute value, given the enclosing
    /// object's (pruned) state and the attribute's *raw* name bytes.
    ///
    /// The returned set may include the accept bit; it has not yet been
    /// pruned for the value's own container kind.
    pub fn on_key(&self, set: State, raw: &[u8]) -> State {
        let mut out = 0u64;
        for k in positions(set.0 & !self.accept_bit()) {
            match &self.steps()[k] {
                Step::Descendant(inner) => {
                    out |= 1u64 << k; // sticky: keep searching deeper
                    if key_matches(inner, raw) {
                        out |= 1u64 << (k + 1);
                    }
                }
                s => {
                    if key_matches(s, raw) {
                        out |= 1u64 << (k + 1);
                    }
                }
            }
        }
        State(out)
    }

    /// The state of the array element at index `idx`, given the enclosing
    /// array's (pruned) state. `probe` evaluates filter predicates against
    /// the element's bytes (see [`crate::filter::eval`]).
    pub fn on_element(
        &self,
        set: State,
        idx: usize,
        probe: &mut dyn FnMut(&FilterExpr) -> bool,
    ) -> State {
        let mut out = 0u64;
        for k in positions(set.0 & !self.accept_bit()) {
            match &self.steps()[k] {
                Step::Descendant(inner) => {
                    out |= 1u64 << k; // sticky
                    if descendant_selects_element(inner, idx, probe) {
                        out |= 1u64 << (k + 1);
                    }
                }
                Step::Filter(expr) => {
                    if probe(expr) {
                        out |= 1u64 << (k + 1);
                    }
                }
                s => {
                    if s.is_array_step() && s.selects_index(idx) {
                        out |= 1u64 << (k + 1);
                    }
                }
            }
        }
        State(out)
    }

    /// Drops the accept bit and every position whose step cannot select
    /// from a container of kind `kind` — the state a value's *own* frame
    /// gets when descending into it.
    pub fn prune_state(&self, set: State, kind: ContainerKind) -> State {
        let mut out = 0u64;
        for k in positions(set.0 & !self.accept_bit()) {
            if k >= self.len() {
                continue;
            }
            let s = &self.steps()[k];
            let keep = match kind {
                ContainerKind::Object => s.is_object_step(),
                ContainerKind::Array => s.is_array_step(),
            };
            if keep {
                out |= 1u64 << k;
            }
        }
        State(out)
    }

    /// Classifies a *value* state set (as returned by [`Path::on_key`] /
    /// [`Path::on_element`]) into the dispatch [`Status`].
    pub fn status_of(&self, set: State) -> Status {
        let accept = set.0 & self.accept_bit() != 0;
        let live = set.0 & !self.accept_bit() != 0;
        match (accept, live) {
            (false, false) => Status::Unmatched,
            (false, true) => Status::Matched,
            (true, false) => Status::Accept,
            (true, true) => Status::AcceptAndDescend,
        }
    }
}

#[derive(Clone, Debug)]
struct Frame {
    kind: ContainerKind,
    state: State,
    counter: usize,
}

/// A running instance of the query automaton over one JSON record.
///
/// # Example
///
/// Evaluating `$.place.name` over `{"user": ..., "place": {"name": ...}}`:
///
/// ```
/// use jsonski_path::{ContainerKind, Path, Runtime, Status};
///
/// let path: Path = "$.place.name".parse()?;
/// let mut rt = Runtime::new(&path);
/// rt.enter_root(ContainerKind::Object);
/// assert_eq!(rt.value_state_for_key("user").1, Status::Unmatched); // skip
/// let (st, status) = rt.value_state_for_key("place");
/// assert_eq!(status, Status::Matched); // descend
/// rt.enter(ContainerKind::Object, st);
/// assert_eq!(rt.value_state_for_key("name").1, Status::Accept); // output!
/// rt.exit();
/// rt.exit();
/// assert_eq!(rt.depth(), 0);
/// # Ok::<(), jsonski_path::ParsePathError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Runtime<'p> {
    path: &'p Path,
    stack: Vec<Frame>,
}

impl<'p> Runtime<'p> {
    /// Creates an automaton instance for `path`, positioned before the root.
    pub fn new(path: &'p Path) -> Self {
        Runtime {
            path,
            stack: Vec::with_capacity(16),
        }
    }

    /// The path being evaluated.
    pub fn path(&self) -> &'p Path {
        self.path
    }

    /// Enters the root record (which matched zero steps by definition).
    ///
    /// Returns the status of the root itself: `Accept` when the path is just
    /// `$`, otherwise `Matched` if the root's kind can satisfy the first
    /// step, `Unmatched` if it cannot (e.g. `$[*]` over an object record).
    pub fn enter_root(&mut self, kind: ContainerKind) -> Status {
        let (state, status) = if self.path.is_empty() {
            (State::UNMATCHED, Status::Accept)
        } else {
            let pruned = self.path.prune_state(self.path.root_state(), kind);
            let status = if pruned.is_unmatched() {
                Status::Unmatched
            } else {
                Status::Matched
            };
            (pruned, status)
        };
        self.stack.push(Frame {
            kind,
            state,
            counter: 0,
        });
        status
    }

    /// Rule `[Key]`: computes the `(state, status)` the value of attribute
    /// `name` would have in the current object frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an object.
    #[inline]
    pub fn value_state_for_key(&self, name: &str) -> (State, Status) {
        self.value_state_for_key_raw(name.as_bytes())
    }

    /// Rule `[Key]` on a *raw* attribute name (escape sequences intact, as
    /// sliced straight from the input). Escaped names are unescaped for
    /// comparison only when they contain a backslash — see
    /// [`crate::names::matches`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an object.
    #[inline]
    pub fn value_state_for_key_raw(&self, raw: &[u8]) -> (State, Status) {
        let frame = self.top();
        debug_assert_eq!(frame.kind, ContainerKind::Object);
        let state = self.path.on_key(frame.state, raw);
        (state, self.path.status_of(state))
    }

    /// Computes the `(state, status)` of the *current* element of the
    /// current array frame (per the counter and the step's index constraint).
    ///
    /// Filter steps are treated as **non-matching** by this probe-less
    /// variant; engines evaluating paths that may contain filters must use
    /// [`Runtime::element_state_with`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an array.
    #[inline]
    pub fn element_state(&self) -> (State, Status) {
        self.element_state_with(&mut |_| false)
    }

    /// Computes the `(state, status)` of the current array element, using
    /// `probe` to evaluate any live filter predicate against the element's
    /// bytes. Engines pass a closure over the element's start position, e.g.
    /// `&mut |expr| jsonski_path::filter::eval(expr, &input[pos..])`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an array.
    #[inline]
    pub fn element_state_with(
        &self,
        probe: &mut dyn FnMut(&FilterExpr) -> bool,
    ) -> (State, Status) {
        let frame = self.top();
        debug_assert_eq!(frame.kind, ContainerKind::Array);
        let state = self.path.on_element(frame.state, frame.counter, probe);
        (state, self.path.status_of(state))
    }

    /// Rules `[Key]`-push / `[Ary-S]`: descends into a container value whose
    /// computed state is `state` (pruned here for the value's kind).
    #[inline]
    pub fn enter(&mut self, kind: ContainerKind, state: State) {
        self.stack.push(Frame {
            kind,
            state: self.path.prune_state(state, kind),
            counter: 0,
        });
    }

    /// Rules `[Val]` / `[Ary-E]`: leaves the current container, restoring the
    /// enclosing state and counter.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (unbalanced enter/exit).
    #[inline]
    pub fn exit(&mut self) {
        self.stack.pop().expect("automaton stack underflow");
    }

    /// Rule `[Com]`: advances the element counter of the current array frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the current frame is not an array.
    #[inline]
    pub fn increment(&mut self) {
        let frame = self.top_mut();
        debug_assert_eq!(frame.kind, ContainerKind::Array);
        frame.counter += 1;
    }

    /// The element counter of the current array frame.
    #[inline]
    pub fn counter(&self) -> usize {
        self.top().counter
    }

    /// Current nesting depth (number of frames).
    #[inline]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The expected type of a *matching* value in the current container
    /// (paper Section 3.2 / Algorithm 2 line 3), or `None` when nothing in
    /// this container can match (its state set is empty).
    ///
    /// The answer is only type-precise ([`ExpectedType::Object`]/
    /// [`ExpectedType::Array`]) for singleton, non-descendant states — the
    /// DFA case. Multi-position sets and descendant positions report
    /// [`ExpectedType::Unknown`], which routes engines to the generic
    /// full-detail scan (the G1 fast-forward is not sound there).
    pub fn expected_type(&self) -> Option<ExpectedType> {
        let set = self.top().state;
        if set.is_unmatched() {
            return None;
        }
        let mut iter = positions(set.0);
        let k = iter.next().expect("non-empty set");
        if iter.next().is_none() && !matches!(self.path.steps()[k], Step::Descendant(_)) {
            Some(self.path.expected_type(k))
        } else {
            Some(ExpectedType::Unknown)
        }
    }

    /// For an array frame: the half-open index range that can still match
    /// (`None` = unbounded; `Some` enables G5 fast-forwarding).
    ///
    /// The combined range over all live positions; `None` as soon as any
    /// live step is unbounded (wildcard, filter, or descendant).
    pub fn index_range(&self) -> Option<(usize, usize)> {
        let set = self.top().state;
        if set.is_unmatched() {
            return None;
        }
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for k in positions(set.0) {
            match self.path.steps()[k].index_range() {
                Some((l, h)) => {
                    lo = lo.min(l);
                    hi = hi.max(h);
                }
                None => return None,
            }
        }
        Some((lo, hi))
    }

    /// For an array frame: the exclusive upper bound on element indices
    /// that could still change the automaton's state, or `None` when
    /// unbounded. `Some(0)` means the frame is dead (UNMATCHED).
    ///
    /// Unlike [`Runtime::index_range`] this is meaningful for dead frames,
    /// which is what [`jsonski::MultiQuery`]-style engines need to compute a
    /// joint skip bound across several automata.
    ///
    /// [`jsonski::MultiQuery`]: https://docs.rs/jsonski
    pub fn array_upper_bound(&self) -> Option<usize> {
        let set = self.top().state;
        if set.is_unmatched() {
            return Some(0);
        }
        let mut hi = 0usize;
        for k in positions(set.0) {
            match self.path.steps()[k].index_range() {
                Some((_, h)) => hi = hi.max(h),
                None => return None,
            }
        }
        Some(hi)
    }

    /// Whether the current container's state is the UNMATCHED sink.
    pub fn is_unmatched(&self) -> bool {
        self.top().state.is_unmatched()
    }

    /// The current container's state set.
    pub fn state(&self) -> State {
        self.top().state
    }

    /// The path step being matched inside the current container, when the
    /// state is a singleton (the DFA case) — `None` for the UNMATCHED sink
    /// and for multi-position (descendant) sets.
    ///
    /// Used by the engine to decide whether the G4 fast-forward applies:
    /// after a [`Step::Child`] match no sibling attribute can match (object
    /// attribute names are unique), whereas a wildcard step keeps matching
    /// and a descendant may match at any depth.
    pub fn current_step(&self) -> Option<&Step> {
        let set = self.top().state;
        let mut iter = positions(set.0);
        let k = iter.next()?;
        if iter.next().is_some() {
            return None;
        }
        self.path.steps().get(k)
    }

    /// Resets for a new record.
    pub fn reset(&mut self) {
        self.stack.clear();
    }

    #[inline]
    fn top(&self) -> &Frame {
        self.stack.last().expect("automaton stack is empty")
    }

    #[inline]
    fn top_mut(&mut self) -> &mut Frame {
        self.stack.last_mut().expect("automaton stack is empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(q: &str) -> Path {
        q.parse().unwrap()
    }

    #[test]
    fn tweet_example_from_figure_1() {
        // $.place.name over the Figure 1 tweet.
        let p = path("$.place.name");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Object), Status::Matched);
        // coordinates: array value, name mismatch -> skip
        assert_eq!(rt.value_state_for_key("coordinates").1, Status::Unmatched);
        // user: object, but name mismatch -> skip (G2 case in the paper)
        assert_eq!(rt.value_state_for_key("user").1, Status::Unmatched);
        // place: matched, descend
        let (st, status) = rt.value_state_for_key("place");
        assert_eq!(status, Status::Matched);
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.value_state_for_key("name").1, Status::Accept);
        // After the accept, bounding_box cannot match (G4 in the paper).
        assert_eq!(rt.value_state_for_key("bounding_box").1, Status::Unmatched);
        rt.exit();
        rt.exit();
        assert_eq!(rt.depth(), 0);
    }

    #[test]
    fn array_counter_and_range() {
        // $.a[2:4]
        let p = path("$.a[2:4]");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, _) = rt.value_state_for_key("a");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.index_range(), Some((2, 4)));
        assert_eq!(rt.array_upper_bound(), Some(4));
        assert_eq!(rt.element_state().1, Status::Unmatched); // idx 0
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Unmatched); // idx 1
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Accept); // idx 2
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Accept); // idx 3
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Unmatched); // idx 4
        rt.exit();
        rt.exit();
    }

    #[test]
    fn root_kind_mismatch_is_unmatched() {
        let p = path("$[*].text");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Object), Status::Unmatched);
        assert!(rt.is_unmatched());
    }

    #[test]
    fn root_only_path_accepts_root() {
        let p = path("$");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Array), Status::Accept);
    }

    #[test]
    fn expected_type_tracks_next_step() {
        let p = path("$.pd[*].cp[1:3].id");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.expected_type(), Some(ExpectedType::Array)); // pd is array
        let (st, _) = rt.value_state_for_key("pd");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.expected_type(), Some(ExpectedType::Object)); // elements are objects
        let (st, _) = rt.element_state();
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.expected_type(), Some(ExpectedType::Array)); // cp is array
        let (st, _) = rt.value_state_for_key("cp");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.index_range(), Some((1, 3)));
        assert_eq!(rt.expected_type(), Some(ExpectedType::Object));
    }

    #[test]
    fn expected_type_none_in_incompatible_container() {
        // Query wants an object attribute but we are inside an array.
        let p = path("$.a.b");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, _) = rt.value_state_for_key("a");
        // Suppose the data disagrees and `a` is actually an array:
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.expected_type(), None);
        assert_eq!(rt.element_state().1, Status::Unmatched);
    }

    #[test]
    fn wildcard_child_matches_any_name() {
        let p = path("$.*");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.value_state_for_key("anything").1, Status::Accept);
        assert_eq!(rt.value_state_for_key("other").1, Status::Accept);
    }

    #[test]
    fn unmatched_frame_blocks_descendants() {
        let p = path("$.a.b");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, status) = rt.value_state_for_key("zzz");
        assert_eq!(status, Status::Unmatched);
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.value_state_for_key("b").1, Status::Unmatched);
        assert!(rt.is_unmatched());
    }

    #[test]
    fn name_union_matches_either_name() {
        let p = path("$['a','b']");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.value_state_for_key("a").1, Status::Accept);
        assert_eq!(rt.value_state_for_key("b").1, Status::Accept);
        assert_eq!(rt.value_state_for_key("c").1, Status::Unmatched);
    }

    #[test]
    fn index_union_range_and_selection() {
        let p = path("$[1,4]");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Array);
        assert_eq!(rt.index_range(), Some((1, 5)));
        assert_eq!(rt.array_upper_bound(), Some(5));
        assert_eq!(rt.element_state().1, Status::Unmatched); // 0
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Accept); // 1
        rt.increment();
        assert_eq!(rt.element_state().1, Status::Unmatched); // 2
    }

    #[test]
    fn descendant_state_is_sticky_and_multi_position() {
        // $..a over {"a": {"a": 1}}: both the outer and inner `a` match.
        let p = path("$..a");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Object), Status::Matched);
        let (st, status) = rt.value_state_for_key("a");
        // Outer `a` is a result AND the search continues below it.
        assert_eq!(status, Status::AcceptAndDescend);
        rt.enter(ContainerKind::Object, st);
        // Inside, the descendant position is still live.
        assert!(!rt.is_unmatched());
        assert_eq!(rt.expected_type(), Some(ExpectedType::Unknown));
        // The singleton descendant position is reported, but it is not a
        // `Child` step, so the engine's G4 check stays off.
        assert!(matches!(rt.current_step(), Some(Step::Descendant(_))));
        let (_, status) = rt.value_state_for_key("a");
        assert_eq!(status, Status::AcceptAndDescend);
        // A non-matching sibling still must be descended into.
        let (st2, status) = rt.value_state_for_key("zzz");
        assert_eq!(status, Status::Matched);
        rt.enter(ContainerKind::Array, st2);
        assert_eq!(rt.array_upper_bound(), None); // unbounded under `..`
        rt.exit();
        rt.exit();
        rt.exit();
    }

    #[test]
    fn descendant_wildcard_selects_members_and_elements() {
        let p = path("$..*");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, status) = rt.value_state_for_key("k");
        assert_eq!(status, Status::AcceptAndDescend);
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.element_state().1, Status::AcceptAndDescend);
        rt.exit();
        rt.exit();
    }

    #[test]
    fn pure_accept_after_descendant_resolves() {
        // `$..a.b`: once `a` matched, `b` is a plain child below it — but the
        // descendant position stays live, so `b`'s accept still descends.
        let p = path("$..a.b");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        let (st, status) = rt.value_state_for_key("a");
        assert_eq!(status, Status::Matched);
        rt.enter(ContainerKind::Object, st);
        let (_, status) = rt.value_state_for_key("b");
        assert_eq!(status, Status::AcceptAndDescend);
        rt.exit();
        rt.exit();
    }

    #[test]
    fn filter_transition_uses_probe() {
        let p = path("$[?(@.x)]");
        let mut rt = Runtime::new(&p);
        assert_eq!(rt.enter_root(ContainerKind::Array), Status::Matched);
        assert_eq!(rt.element_state_with(&mut |_| true).1, Status::Accept);
        assert_eq!(rt.element_state_with(&mut |_| false).1, Status::Unmatched);
        // The probe-less variant treats filters as non-matching.
        assert_eq!(rt.element_state().1, Status::Unmatched);
        assert_eq!(rt.index_range(), None);
        assert_eq!(rt.array_upper_bound(), None);
    }

    #[test]
    fn non_descendant_paths_stay_singleton() {
        // The DFA property: without `..`, every live set is a singleton.
        let p = path("$.a['b','c'][1,3][?(@.x > 1)].*");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        assert!(rt.current_step().is_some());
        let (st, _) = rt.value_state_for_key("a");
        rt.enter(ContainerKind::Object, st);
        assert!(rt.current_step().is_some());
        let (st, _) = rt.value_state_for_key("c");
        rt.enter(ContainerKind::Array, st);
        assert!(rt.current_step().is_some());
        assert_eq!(rt.index_range(), Some((1, 4)));
    }

    #[test]
    fn reset_clears_stack() {
        let p = path("$.a");
        let mut rt = Runtime::new(&p);
        rt.enter_root(ContainerKind::Object);
        rt.reset();
        assert_eq!(rt.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn exit_on_empty_stack_panics() {
        let p = path("$.a");
        let mut rt = Runtime::new(&p);
        rt.exit();
    }
}
