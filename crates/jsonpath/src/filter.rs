//! Byte-level filter predicate evaluation, shared by every engine.
//!
//! A filter `[?(@.x op v)]` must be decided *while scanning* the candidate
//! element. All five engines hand the element's raw bytes to [`eval`], which
//! parses just enough JSON (scalar-wise, no allocation on the happy path) to
//! resolve the `@`-relative path and compare. Centralizing this keeps every
//! engine bit-for-bit agreed on filter semantics — including on malformed
//! input, where the shared walker fails identically everywhere.
//!
//! Comparison semantics follow RFC 9535:
//!
//! * a **missing** target satisfies only `!=`;
//! * `==`/`!=` across different types: `==` is false, `!=` is true
//!   (containers compare equal to nothing);
//! * ordering (`<` `<=` `>` `>=`) is defined for number–number and
//!   string–string pairs only, and is always false against a missing value;
//! * the operator-less existence form is true iff the target resolves.

use std::cmp::Ordering;

use crate::ast::{CmpOp, FilterExpr, Literal, Step};
use crate::names;

/// Evaluates `expr` against a candidate value starting at `value[0]`
/// (leading whitespace tolerated). `value` may extend past the candidate —
/// engines pass the rest of the record; the walker never reads beyond the
/// candidate's own balanced extent.
pub fn eval(expr: &FilterExpr, value: &[u8]) -> bool {
    let target = locate(expr.steps(), value);
    match (target, expr.cmp()) {
        (found, None) => found.is_some(),
        (target, Some((op, lit))) => compare(value, target, *op, lit),
    }
}

/// Resolves the `@`-relative path, returning the byte offset of the target
/// value's first byte, or `None` if any step fails to resolve.
fn locate(steps: &[Step], bytes: &[u8]) -> Option<usize> {
    let mut pos = skip_ws(bytes, 0)?;
    for step in steps {
        pos = match step {
            Step::Child(name) => find_member(bytes, pos, name)?,
            Step::Index(n) => find_element(bytes, pos, *n)?,
            _ => return None, // unreachable: FilterExpr::new enforces this
        };
    }
    Some(pos)
}

/// The target value, classified just enough to compare.
enum Target<'a> {
    Num(f64),
    /// Raw string contents, escapes intact (quotes excluded).
    Str(&'a [u8]),
    Bool(bool),
    Null,
    /// A container, or malformed data: compares equal to nothing.
    Opaque,
}

fn classify(bytes: &[u8], pos: usize) -> Target<'_> {
    match bytes.get(pos) {
        Some(b'"') => match seek_string_end(bytes, pos) {
            Some(end) => Target::Str(&bytes[pos + 1..end - 1]),
            None => Target::Opaque,
        },
        Some(b'{') | Some(b'[') => Target::Opaque,
        Some(b't') if bytes[pos..].starts_with(b"true") => Target::Bool(true),
        Some(b'f') if bytes[pos..].starts_with(b"false") => Target::Bool(false),
        Some(b'n') if bytes[pos..].starts_with(b"null") => Target::Null,
        Some(_) => {
            let mut end = pos;
            while end < bytes.len()
                && matches!(bytes[end], b'+' | b'-' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                end += 1;
            }
            match std::str::from_utf8(&bytes[pos..end])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
            {
                Some(n) => Target::Num(n),
                None => Target::Opaque,
            }
        }
        None => Target::Opaque,
    }
}

fn compare(bytes: &[u8], target: Option<usize>, op: CmpOp, lit: &Literal) -> bool {
    let Some(pos) = target else {
        // RFC 9535: Nothing != value is true; every other comparison with a
        // missing value is false.
        return op == CmpOp::Ne;
    };
    match (classify(bytes, pos), lit) {
        (Target::Num(n), Literal::Number(text)) => {
            let l: f64 = text.parse().expect("literal validated at parse time");
            match n.partial_cmp(&l) {
                Some(ord) => ord_satisfies(ord, op),
                None => false,
            }
        }
        (Target::Str(raw), Literal::Str(s)) => match op {
            CmpOp::Eq => names::matches(raw, s),
            CmpOp::Ne => !names::matches(raw, s),
            _ => match names::unescape(raw) {
                Some(decoded) => ord_satisfies(decoded.as_str().cmp(s.as_str()), op),
                None => false, // malformed string orders with nothing
            },
        },
        (Target::Bool(b), Literal::Bool(l)) => match op {
            CmpOp::Eq => b == *l,
            CmpOp::Ne => b != *l,
            _ => false,
        },
        (Target::Null, Literal::Null) => match op {
            CmpOp::Eq => true,
            CmpOp::Ne => false,
            _ => false,
        },
        // Cross-type or opaque (container/malformed): only `!=` holds.
        _ => op == CmpOp::Ne,
    }
}

fn ord_satisfies(ord: Ordering, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> Option<usize> {
    while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    (i < bytes.len()).then_some(i)
}

/// `i` points at an opening `"`; returns the offset just past the closing
/// quote.
fn seek_string_end(bytes: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return Some(j + 1),
            _ => j += 1,
        }
    }
    None
}

/// `i` points at the first byte of a value; returns the offset just past
/// its balanced extent.
fn skip_value(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i)? {
        b'"' => seek_string_end(bytes, i),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                match bytes[j] {
                    b'"' => j = seek_string_end(bytes, j)?,
                    b'{' | b'[' => {
                        depth += 1;
                        j += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            let mut j = i;
            while j < bytes.len()
                && !matches!(bytes[j], b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r')
            {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// `pos` points at a value that must be an object; returns the offset of
/// the value of the member named `name`.
fn find_member(bytes: &[u8], pos: usize, name: &str) -> Option<usize> {
    if bytes.get(pos) != Some(&b'{') {
        return None;
    }
    let mut i = skip_ws(bytes, pos + 1)?;
    if bytes[i] == b'}' {
        return None;
    }
    loop {
        if bytes[i] != b'"' {
            return None;
        }
        let key_end = seek_string_end(bytes, i)?;
        let key = &bytes[i + 1..key_end - 1];
        i = skip_ws(bytes, key_end)?;
        if bytes[i] != b':' {
            return None;
        }
        let vstart = skip_ws(bytes, i + 1)?;
        if names::matches(key, name) {
            return Some(vstart);
        }
        i = skip_ws(bytes, skip_value(bytes, vstart)?)?;
        match bytes[i] {
            b',' => i = skip_ws(bytes, i + 1)?,
            _ => return None, // `}` or malformed: member absent
        }
    }
}

/// `pos` points at a value that must be an array; returns the offset of
/// element `idx`.
fn find_element(bytes: &[u8], pos: usize, idx: usize) -> Option<usize> {
    if bytes.get(pos) != Some(&b'[') {
        return None;
    }
    let mut i = skip_ws(bytes, pos + 1)?;
    if bytes[i] == b']' {
        return None;
    }
    let mut count = 0usize;
    loop {
        if count == idx {
            return Some(i);
        }
        i = skip_ws(bytes, skip_value(bytes, i)?)?;
        match bytes[i] {
            b',' => {
                i = skip_ws(bytes, i + 1)?;
                count += 1;
            }
            _ => return None, // `]` or malformed: element absent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Path;

    /// Parses `[?(...)]`-style text into a `FilterExpr` via the full parser.
    fn expr(filter: &str) -> FilterExpr {
        let p: Path = format!("$[{filter}]").parse().unwrap();
        match &p.steps()[0] {
            Step::Filter(e) => e.clone(),
            other => panic!("not a filter: {other:?}"),
        }
    }

    #[test]
    fn existence() {
        let e = expr("?(@.x)");
        assert!(eval(&e, br#"{"x": 1}"#));
        assert!(eval(&e, br#"{"x": null}"#)); // null exists
        assert!(!eval(&e, br#"{"y": 1}"#));
        assert!(!eval(&e, b"[1, 2]"));
        assert!(!eval(&e, b"42"));
    }

    #[test]
    fn number_comparisons() {
        let e = expr("?(@.x >= 10)");
        assert!(eval(&e, br#"{"x": 10}"#));
        assert!(eval(&e, br#"{"x": 1e3}"#));
        assert!(!eval(&e, br#"{"x": 9.5}"#));
        assert!(!eval(&e, br#"{"x": "10"}"#)); // string never orders vs number
        let e = expr("?(@ < -1.5)");
        assert!(eval(&e, b"-2"));
        assert!(!eval(&e, b"-1.5"));
    }

    #[test]
    fn string_comparisons() {
        let e = expr("?(@.name == 'caf\u{e9}')");
        assert!(eval(&e, "{\"name\": \"café\"}".as_bytes()));
        assert!(eval(&e, br#"{"name": "caf\u00e9"}"#)); // escaped form
        assert!(!eval(&e, br#"{"name": "cafe"}"#));
        let e = expr("?(@.name < 'b')");
        assert!(eval(&e, br#"{"name": "a"}"#));
        assert!(!eval(&e, br#"{"name": "b"}"#));
    }

    #[test]
    fn bool_and_null() {
        assert!(eval(&expr("?(@.ok == true)"), br#"{"ok": true}"#));
        assert!(!eval(&expr("?(@.ok == true)"), br#"{"ok": false}"#));
        assert!(eval(&expr("?(@.v == null)"), br#"{"v": null}"#));
        assert!(!eval(&expr("?(@.v == null)"), br#"{"v": 0}"#));
        assert!(!eval(&expr("?(@.ok < true)"), br#"{"ok": false}"#)); // no bool order
    }

    #[test]
    fn missing_satisfies_only_ne() {
        let doc = br#"{"y": 1}"#;
        assert!(eval(&expr("?(@.x != 1)"), doc));
        assert!(!eval(&expr("?(@.x == 1)"), doc));
        assert!(!eval(&expr("?(@.x < 1)"), doc));
        assert!(!eval(&expr("?(@.x >= 1)"), doc));
    }

    #[test]
    fn cross_type_and_containers() {
        assert!(!eval(&expr("?(@.x == 1)"), br#"{"x": "1"}"#));
        assert!(eval(&expr("?(@.x != 1)"), br#"{"x": "1"}"#));
        assert!(!eval(&expr("?(@.x == null)"), br#"{"x": {}}"#));
        assert!(eval(&expr("?(@.x != null)"), br#"{"x": {}}"#));
        assert!(!eval(&expr("?(@.x == 1)"), br#"{"x": [1]}"#));
    }

    #[test]
    fn nested_paths_and_indices() {
        let e = expr("?(@.a.b == 2)");
        assert!(eval(&e, br#"{"a": {"z": 0, "b": 2}, "c": 3}"#));
        assert!(!eval(&e, br#"{"a": {"b": 3}}"#));
        let e = expr("?(@[1] == 'y')");
        assert!(eval(&e, br#"["x", "y"]"#));
        assert!(!eval(&e, br#"["y"]"#));
        let e = expr("?(@.tags[0] == 'a')");
        assert!(eval(&e, br#"{"tags": ["a", "b"]}"#));
    }

    #[test]
    fn skips_decoys_with_nested_structure() {
        // The member scan must skip strings containing braces and nested
        // containers without losing its place.
        let e = expr("?(@.k == 1)");
        assert!(eval(
            &e,
            br#"{"a": "}{", "b": {"k": 9, "l": [1, {"m": 2}]}, "k": 1}"#
        ));
    }

    #[test]
    fn element_bytes_may_extend_past_candidate() {
        // Engines pass the rest of the record; the walker must stop at the
        // candidate's own extent.
        let e = expr("?(@.x == 1)");
        assert!(eval(&e, br#"{"x": 1}, {"x": 2}]"#));
        assert!(!eval(&e, br#"{"x": 2}, {"x": 1}]"#));
    }

    #[test]
    fn malformed_input_is_opaque() {
        let e = expr("?(@.x == 1)");
        assert!(!eval(&e, br#"{"x" 1}"#));
        assert!(!eval(&e, br#"{"x": }"#));
        assert!(!eval(&e, b""));
    }
}
