//! Escape-aware attribute-name comparison, shared by every engine.
//!
//! Engines read attribute names as *raw* bytes (escape sequences intact,
//! quotes excluded). A query name is plain text. The common case — no
//! backslash in the raw bytes — is a straight memcmp; otherwise the raw
//! name is unescaped per RFC 8259 before comparison. Centralizing this
//! keeps all five engines bit-for-bit agreed on exotic names.

/// Whether the raw (possibly escaped) name equals the query name.
///
/// ```
/// use jsonski_path::names;
/// assert!(names::matches(br#"plain"#, "plain"));
/// assert!(names::matches(br#"a\"b"#, "a\"b"));
/// assert!(names::matches(br#"tab\there"#, "tab\there"));
/// assert!(names::matches(br#"\u0041"#, "A"));
/// assert!(!names::matches(br#"a\\b"#, "a\\\\b"));
/// ```
#[inline]
pub fn matches(raw: &[u8], query: &str) -> bool {
    if !raw.contains(&b'\\') {
        return raw == query.as_bytes();
    }
    match unescape(raw) {
        Some(s) => s == query,
        None => false, // malformed escape can never match
    }
}

/// Unescapes the body of a JSON string (quotes excluded); returns `None`
/// for malformed escapes or invalid UTF-8/surrogates.
///
/// ```
/// use jsonski_path::names;
/// assert_eq!(names::unescape(br#"a\nb"#).as_deref(), Some("a\nb"));
/// assert_eq!(names::unescape(br#"\uD83D\uDE00"#).as_deref(), Some("😀"));
/// assert_eq!(names::unescape(br#"\x"#), None);
/// ```
pub fn unescape(raw: &[u8]) -> Option<String> {
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let b = raw[i];
        if b != b'\\' {
            // Copy a run of plain bytes (must be valid UTF-8).
            let start = i;
            while i < raw.len() && raw[i] != b'\\' {
                i += 1;
            }
            out.push_str(std::str::from_utf8(&raw[start..i]).ok()?);
            continue;
        }
        i += 1;
        let esc = *raw.get(i)?;
        i += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = hex4(raw.get(i..i + 4)?)?;
                i += 4;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must pair with a following \uXXXX low
                    // surrogate.
                    if raw.get(i) != Some(&b'\\') || raw.get(i + 1) != Some(&b'u') {
                        return None;
                    }
                    let lo = hex4(raw.get(i + 2..i + 6)?)?;
                    i += 6;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return None;
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    out.push(char::from_u32(c)?);
                } else if (0xDC00..0xE000).contains(&hi) {
                    return None; // lone low surrogate
                } else {
                    out.push(char::from_u32(hi)?);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

fn hex4(digits: &[u8]) -> Option<u32> {
    let mut v = 0u32;
    for &d in digits {
        v = v * 16 + (d as char).to_digit(16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_names_fast_path() {
        assert!(matches(b"abc", "abc"));
        assert!(!matches(b"abc", "abd"));
        assert!(!matches(b"abc", "ab"));
        assert!(matches(b"", ""));
    }

    #[test]
    fn simple_escapes() {
        assert!(matches(br#"a\"b"#, "a\"b"));
        assert!(matches(br#"a\\b"#, "a\\b"));
        assert!(matches(br#"a\/b"#, "a/b"));
        assert!(matches(br#"\n\t\r\b\f"#, "\n\t\r\u{8}\u{c}"));
    }

    #[test]
    fn unicode_escapes() {
        assert!(matches("é".as_bytes(), "é")); // raw UTF-8, no escapes
        assert!(matches(br#"\u00e9"#, "é"));
        assert!(matches(br#"caf\u00e9"#, "café"));
        assert!(matches(br#"\uD83D\uDE00"#, "😀")); // surrogate pair
        assert!(matches("😀".as_bytes(), "😀"));
        assert!(matches(br#"\u0041"#, "A"));
    }

    #[test]
    fn malformed_never_matches() {
        assert!(!matches(br#"a\"#, "a"));
        assert!(!matches(br#"\q"#, "q"));
        assert!(!matches(br#"\u12"#, "\u{12}"));
        assert!(!matches(br#"\uD800"#, "?")); // lone high surrogate
        assert!(!matches(br#"\uDC00"#, "?")); // lone low surrogate
        assert_eq!(unescape(br#"\uD800x"#), None);
    }

    #[test]
    fn escaped_and_unescaped_forms_are_equal_names() {
        // The same logical name written two ways must match the same query.
        let query = "a/b";
        assert!(matches(b"a/b", query));
        assert!(matches(br#"a\/b"#, query));
    }

    #[test]
    fn non_utf8_raw_bytes_never_match() {
        assert!(!matches(&[0xFF, 0xFE, b'\\', b'n'], "\u{FFFD}\u{FFFD}\n"));
    }
}
