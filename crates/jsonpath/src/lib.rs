//! JSONPath subset parser and pushdown query automaton.
//!
//! This crate implements the query side of the JSONSki reproduction, shared
//! by *all* engines (JSONSki core and every baseline): a parser for the
//! JSONPath notation the paper supports — root `$`, child `.name` /
//! `['name']`, array index `[n]`, index range `[m:n]`, and wildcard `[*]` /
//! `.*` — plus the pushdown query automaton of the paper's Figure 5 (rules
//! `[Key]`, `[Val]`, `[Ary-S]`, `[Ary-E]`, `[Com]`) and the attribute/element *type
//! inference* of Section 3.2 that drives fast-forwarding.
//!
//! The descendant operator `..` is intentionally unsupported, matching the
//! paper's stated limitation ("One missing operator in the current version
//! is descendant elements"), and parsing it reports a dedicated error.
//!
//! # Example
//!
//! ```
//! use jsonski_path::{Path, Step, ExpectedType};
//!
//! let path: Path = "$.place.name".parse()?;
//! assert_eq!(path.steps().len(), 2);
//! assert_eq!(path.steps()[0], Step::child("place"));
//! // `place` must be an object because it has an attribute `name`:
//! assert_eq!(path.expected_type(0), ExpectedType::Object);
//! // the final step's value could be anything:
//! assert_eq!(path.expected_type(1), ExpectedType::Unknown);
//! # Ok::<(), jsonski_path::ParsePathError>(())
//! ```

#![deny(missing_docs)]

mod ast;
mod automaton;
pub mod names;
mod parse;

pub use ast::{ExpectedType, Path, Step};
pub use automaton::{ContainerKind, Runtime, State, Status};
pub use parse::ParsePathError;
