//! JSONPath parser, pushdown query automaton, and fast-forward legality
//! analysis.
//!
//! This crate implements the query side of the JSONSki reproduction, shared
//! by *all* engines (JSONSki core and every baseline): a parser for the full
//! supported JSONPath grammar — root `$`, child `.name` / `['name']`, array
//! index `[n]`, index range `[m:n]`, wildcards `[*]` / `.*`, unions
//! `['a','b']` / `[1,3]`, descendant `..name` / `..*` / `..[...]`, and
//! comparison filters `[?(@.x op v)]` over scalars — plus the pushdown query
//! automaton of the paper's Figure 5 (rules `[Key]`, `[Val]`, `[Ary-S]`,
//! `[Ary-E]`, `[Com]`), generalized to an NFA over path positions, and the
//! attribute/element *type inference* of Section 3.2 that drives
//! fast-forwarding.
//!
//! The paper restricts queries to child steps and index ranges (its Section
//! 5.1 names descendant elements as "one missing operator in the current
//! version"); this reproduction lifts that restriction. Because descendant
//! and filter steps break the soundness assumptions behind the paper's
//! fast-forward groups (Table 1), the [`Legality`] analysis computes — from
//! the query alone — which groups G1–G5 remain sound in each automaton
//! state, so engines degrade from "skip siblings" to "descend everywhere"
//! only where the query demands it. Descendant-free queries keep singleton
//! (DFA) state sets and exactly their old fast-forward behavior.
//!
//! Remaining documented deviations from RFC 9535: filters apply to array
//! elements only, unions evaluate in document order with duplicates removed,
//! and negative indices / slice steps are unsupported.
//!
//! # Example
//!
//! ```
//! use jsonski_path::{Path, Step, ExpectedType};
//!
//! let path: Path = "$.place.name".parse()?;
//! assert_eq!(path.steps().len(), 2);
//! assert_eq!(path.steps()[0], Step::child("place"));
//! // `place` must be an object because it has an attribute `name`:
//! assert_eq!(path.expected_type(0), ExpectedType::Object);
//! // the final step's value could be anything:
//! assert_eq!(path.expected_type(1), ExpectedType::Unknown);
//!
//! // Descendant steps parse too, but disable every fast-forward group:
//! let deep: Path = "$..name".parse()?;
//! assert!(deep.has_descendant());
//! assert_eq!(deep.legality(0), jsonski_path::Legality::NONE);
//! # Ok::<(), jsonski_path::ParsePathError>(())
//! ```

#![deny(missing_docs)]

mod ast;
mod automaton;
pub mod filter;
mod legality;
pub mod names;
mod parse;

pub use ast::{CmpOp, ExpectedType, FilterExpr, Literal, Path, Step};
pub use automaton::{ContainerKind, Runtime, State, Status};
pub use legality::Legality;
pub use parse::ParsePathError;
