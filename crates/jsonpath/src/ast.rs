//! Path AST: steps, unions, filters, type inference, and index constraints.

use std::fmt;
use std::str::FromStr;

use crate::parse::{parse_path, ParsePathError};

/// One step of a JSONPath expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Object child access: `.name` or `['name']`.
    Child(String),
    /// Object wildcard: `.*` — any attribute value.
    AnyChild,
    /// Array index: `[n]`.
    Index(usize),
    /// Array half-open index range: `[m:n]` selects elements `m..n`.
    ///
    /// The paper's `[2:4]` "requests the third and the fourth array
    /// elements", i.e. indices 2 and 3.
    Slice(usize, usize),
    /// Array wildcard: `[*]` — every element.
    AnyElement,
    /// Name union: `['a','b']` — any attribute whose name is in the set.
    ///
    /// Evaluated in *document order* (the order attributes appear in the
    /// data), with duplicates deduplicated at parse time.
    NameUnion(Vec<String>),
    /// Index union: `[1,3]` — the elements at the given indices.
    ///
    /// Sorted and deduplicated at parse time; evaluated in document order.
    IndexUnion(Vec<usize>),
    /// Descendant step: `..name`, `..*`, or `..[...]` — applies the inner
    /// selector at the current value *and every depth below it*.
    ///
    /// `..*` selects every member value and every array element at any
    /// depth. The inner step is never itself a descendant.
    Descendant(Box<Step>),
    /// Comparison filter over array elements: `[?(@.x op v)]` or the
    /// existence form `[?(@.x)]`.
    ///
    /// Filters apply to **array elements only** (a documented restriction of
    /// this reproduction; RFC 9535 also applies them to object members).
    Filter(FilterExpr),
}

/// Comparison operator of a [`Step::Filter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A literal on the right-hand side of a filter comparison.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A JSON number, kept as its source text (so the AST stays `Eq`/`Hash`;
    /// it is parsed to `f64` only at comparison time).
    Number(String),
    /// A string literal (already unescaped).
    Str(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => f.write_str(n),
            Literal::Str(s) => {
                f.write_str("'")?;
                for c in s.chars() {
                    match c {
                        '\'' => f.write_str("\\'")?,
                        '\\' => f.write_str("\\\\")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("'")
            }
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => f.write_str("null"),
        }
    }
}

/// The body of a [`Step::Filter`]: a relative path rooted at the current
/// element (`@`), optionally compared against a [`Literal`].
///
/// Without a comparison the filter is an *existence* test: the element is
/// selected iff the `@`-relative path resolves to a value. With one, the
/// resolved value is compared per [`crate::filter::eval`]'s RFC 9535-style
/// rules (missing values: `!=` is true, everything else false).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FilterExpr {
    steps: Vec<Step>,
    cmp: Option<(CmpOp, Literal)>,
}

impl FilterExpr {
    /// Builds a filter expression.
    ///
    /// # Panics
    ///
    /// Panics if any relative step is not [`Step::Child`] or [`Step::Index`]
    /// (the only step kinds allowed inside a filter path).
    pub fn new(steps: Vec<Step>, cmp: Option<(CmpOp, Literal)>) -> Self {
        assert!(
            steps
                .iter()
                .all(|s| matches!(s, Step::Child(_) | Step::Index(_))),
            "filter paths support only child and index steps"
        );
        FilterExpr { steps, cmp }
    }

    /// The `@`-relative steps (each is `Child` or `Index`).
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The comparison, or `None` for an existence filter.
    pub fn cmp(&self) -> Option<&(CmpOp, Literal)> {
        self.cmp.as_ref()
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("?(@")?;
        for s in &self.steps {
            match s {
                Step::Child(name) => write!(f, ".{name}")?,
                Step::Index(n) => write!(f, "[{n}]")?,
                _ => unreachable!("filter paths contain only child/index steps"),
            }
        }
        if let Some((op, lit)) = &self.cmp {
            write!(f, " {op} {lit}")?;
        }
        f.write_str(")")
    }
}

impl Step {
    /// Convenience constructor for [`Step::Child`].
    ///
    /// ```
    /// assert_eq!(jsonski_path::Step::child("a"), jsonski_path::Step::Child("a".into()));
    /// ```
    pub fn child(name: impl Into<String>) -> Self {
        Step::Child(name.into())
    }

    /// Whether this step can select from an object.
    ///
    /// True for descendant steps regardless of the inner selector: `..[0]`
    /// still *traverses* objects even though it only selects array elements.
    pub fn is_object_step(&self) -> bool {
        matches!(
            self,
            Step::Child(_) | Step::AnyChild | Step::NameUnion(_) | Step::Descendant(_)
        )
    }

    /// Whether this step can select from an array.
    ///
    /// True for descendant steps regardless of the inner selector (they
    /// traverse arrays), and for filters (which test array elements).
    pub fn is_array_step(&self) -> bool {
        matches!(
            self,
            Step::Index(_)
                | Step::Slice(_, _)
                | Step::AnyElement
                | Step::IndexUnion(_)
                | Step::Descendant(_)
                | Step::Filter(_)
        )
    }

    /// The index range this array step selects, as a half-open interval,
    /// or `None` for non-array steps, filters, descendants, and the
    /// unbounded wildcard.
    ///
    /// ```
    /// use jsonski_path::Step;
    /// assert_eq!(Step::Index(2).index_range(), Some((2, 3)));
    /// assert_eq!(Step::Slice(2, 4).index_range(), Some((2, 4)));
    /// assert_eq!(Step::IndexUnion(vec![1, 4]).index_range(), Some((1, 5)));
    /// assert_eq!(Step::AnyElement.index_range(), None);
    /// ```
    pub fn index_range(&self) -> Option<(usize, usize)> {
        match self {
            Step::Index(n) => Some((*n, n + 1)),
            Step::Slice(m, n) => Some((*m, *n)),
            // Sorted + deduplicated at construction: first is min, last is max.
            Step::IndexUnion(ns) => Some((*ns.first()?, ns.last()? + 1)),
            _ => None,
        }
    }

    /// Whether an array element at position `idx` satisfies this step's
    /// index constraint (always true for `[*]`; false for object steps).
    ///
    /// Filters and descendants return `false` here: they need a value probe
    /// resp. the sticky NFA transition, which plain index selection cannot
    /// express — see [`crate::Runtime::element_state_with`].
    pub fn selects_index(&self, idx: usize) -> bool {
        match self {
            Step::AnyElement => true,
            Step::Index(n) => idx == *n,
            Step::Slice(m, n) => (*m..*n).contains(&idx),
            Step::IndexUnion(ns) => ns.binary_search(&idx).is_ok(),
            Step::Child(_) | Step::AnyChild | Step::NameUnion(_) => false,
            Step::Descendant(_) | Step::Filter(_) => false,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Child(name) => write!(f, ".{name}"),
            Step::AnyChild => write!(f, ".*"),
            Step::Index(n) => write!(f, "[{n}]"),
            Step::Slice(m, n) => write!(f, "[{m}:{n}]"),
            Step::AnyElement => write!(f, "[*]"),
            Step::NameUnion(names) => {
                f.write_str("[")?;
                for (i, name) in names.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str("'")?;
                    for c in name.chars() {
                        match c {
                            '\'' => f.write_str("\\'")?,
                            '\\' => f.write_str("\\\\")?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    f.write_str("'")?;
                }
                f.write_str("]")
            }
            Step::IndexUnion(ns) => {
                f.write_str("[")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{n}")?;
                }
                f.write_str("]")
            }
            Step::Descendant(inner) => match inner.as_ref() {
                Step::Child(name) => write!(f, "..{name}"),
                Step::AnyChild => write!(f, "..*"),
                // Every other inner selector displays in bracket form.
                other => write!(f, "..{other}"),
            },
            Step::Filter(expr) => write!(f, "[{expr}]"),
        }
    }
}

/// The container type a query step implies for the value it selects
/// (paper Section 3.2: "the data type can be inferred from the query").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpectedType {
    /// The value must be a JSON object (the next step is a child access).
    Object,
    /// The value must be a JSON array (the next step is an array access).
    Array,
    /// Any type can match: the value is at the last level of the path, or
    /// the next step is a descendant (which matches at any depth in either
    /// container kind).
    Unknown,
}

/// A parsed JSONPath expression: `$` followed by a sequence of [`Step`]s.
///
/// # Example
///
/// ```
/// use jsonski_path::{Path, Step};
/// let p: Path = "$.pd[*].cp[1:3].id".parse()?;
/// assert_eq!(
///     p.steps(),
///     &[
///         Step::child("pd"),
///         Step::AnyElement,
///         Step::child("cp"),
///         Step::Slice(1, 3),
///         Step::child("id"),
///     ]
/// );
/// # Ok::<(), jsonski_path::ParsePathError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// Maximum number of steps in a path.
    ///
    /// The query automaton tracks its match frontier as a 64-bit set with
    /// one bit per position `0..=len` (see [`crate::State`]), so paths are
    /// capped well below 64 steps. Real-world queries are far shorter.
    pub const MAX_STEPS: usize = 60;

    /// Builds a path from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if there are more than [`Path::MAX_STEPS`] steps.
    pub fn new(steps: Vec<Step>) -> Self {
        assert!(
            steps.len() <= Path::MAX_STEPS,
            "path exceeds {} steps",
            Path::MAX_STEPS
        );
        Path { steps }
    }

    /// Parses a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] for malformed input, empty ranges,
    /// malformed filters, or paths longer than [`Path::MAX_STEPS`].
    pub fn parse(input: &str) -> Result<Self, ParsePathError> {
        parse_path(input)
    }

    /// The steps of this path, root-first.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps (the depth of the match below the root — except
    /// under descendant steps, which match at any depth).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path is just `$` (matching the whole record).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether any step is a descendant (`..`) step.
    pub fn has_descendant(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Descendant(_)))
    }

    /// Whether any step is a filter (`[?(...)]`) step.
    pub fn has_filter(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Filter(_)))
    }

    /// Infers the type of the value selected by step `k` (0-based), per the
    /// paper's Section 3.2: the type of step `k`'s value is dictated by step
    /// `k + 1`; the last step's value type is [`ExpectedType::Unknown`], as
    /// is the type before a descendant step (which matches in objects and
    /// arrays alike, at any depth).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn expected_type(&self, k: usize) -> ExpectedType {
        assert!(k < self.steps.len(), "step index out of range");
        match self.steps.get(k + 1) {
            None => ExpectedType::Unknown,
            Some(Step::Descendant(_)) => ExpectedType::Unknown,
            Some(Step::Filter(_)) => ExpectedType::Array,
            Some(s) if s.is_object_step() => ExpectedType::Object,
            Some(_) => ExpectedType::Array,
        }
    }

    /// The container type the *root* record must have for this path to
    /// match anything, or `None` when the path is `$` alone.
    /// [`ExpectedType::Unknown`] when the first step is a descendant
    /// (either container kind works).
    pub fn root_type(&self) -> Option<ExpectedType> {
        self.steps.first().map(|s| match s {
            Step::Descendant(_) => ExpectedType::Unknown,
            Step::Filter(_) => ExpectedType::Array,
            s if s.is_object_step() => ExpectedType::Object,
            _ => ExpectedType::Array,
        })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$")?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips() {
        for q in [
            "$.place.name",
            "$[*].en.urls[*].url",
            "$.pd[*].cp[1:3].id",
            "$.dt[*][*][2:4]",
            "$[10:21].cl.P150[*].ms.pty",
            "$.a.*",
            "$",
            // Full-grammar forms.
            "$..name",
            "$..*",
            "$..[0]",
            "$..[*]",
            "$.a..b[1:3]",
            "$['a','b'].c",
            "$[1,3]",
            "$.a[?(@.x == 10)]",
            "$.a[?(@.x.y != 'v')]",
            "$.a[?(@[0] >= -1.5)]",
            "$.a[?(@.ok == true)].id",
            "$.a[?(@.x == null)]",
            "$.items[?(@.price < 9.99)]",
            "$..[?(@.id)]",
        ] {
            let p: Path = q.parse().unwrap();
            assert_eq!(p.to_string(), q);
            let p2: Path = p.to_string().parse().unwrap();
            assert_eq!(p, p2);
        }
    }

    #[test]
    fn expected_type_inference_matches_paper_example() {
        // "$.place.name": place is an object (it has attribute `name`).
        let p: Path = "$.place.name".parse().unwrap();
        assert_eq!(p.expected_type(0), ExpectedType::Object);
        assert_eq!(p.expected_type(1), ExpectedType::Unknown);

        // "$.places[2:4].name": places is an array.
        let p: Path = "$.places[2:4].name".parse().unwrap();
        assert_eq!(p.expected_type(0), ExpectedType::Array);
        assert_eq!(p.expected_type(1), ExpectedType::Object);
        assert_eq!(p.expected_type(2), ExpectedType::Unknown);
    }

    #[test]
    fn expected_type_is_unknown_before_descendant() {
        // `a`'s value may be an object or an array: `..b` searches both.
        let p: Path = "$.a..b".parse().unwrap();
        assert_eq!(p.expected_type(0), ExpectedType::Unknown);
        assert_eq!(p.expected_type(1), ExpectedType::Unknown);
    }

    #[test]
    fn expected_type_is_array_before_filter() {
        let p: Path = "$.a[?(@.x)].b".parse().unwrap();
        assert_eq!(p.expected_type(0), ExpectedType::Array);
        assert_eq!(p.expected_type(1), ExpectedType::Object);
    }

    #[test]
    fn root_type() {
        let p: Path = "$[*].text".parse().unwrap();
        assert_eq!(p.root_type(), Some(ExpectedType::Array));
        let p: Path = "$.a".parse().unwrap();
        assert_eq!(p.root_type(), Some(ExpectedType::Object));
        let p: Path = "$..a".parse().unwrap();
        assert_eq!(p.root_type(), Some(ExpectedType::Unknown));
        let p: Path = "$".parse().unwrap();
        assert_eq!(p.root_type(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn index_selection_semantics() {
        assert!(Step::Slice(2, 4).selects_index(2));
        assert!(Step::Slice(2, 4).selects_index(3));
        assert!(!Step::Slice(2, 4).selects_index(4));
        assert!(Step::Index(0).selects_index(0));
        assert!(!Step::Index(0).selects_index(1));
        assert!(Step::AnyElement.selects_index(10_000));
        assert!(!Step::child("x").selects_index(0));
        let u = Step::IndexUnion(vec![1, 4]);
        assert!(u.selects_index(1));
        assert!(!u.selects_index(2));
        assert!(u.selects_index(4));
        assert_eq!(u.index_range(), Some((1, 5)));
    }

    #[test]
    fn descendant_traverses_both_container_kinds() {
        let d = Step::Descendant(Box::new(Step::child("a")));
        assert!(d.is_object_step());
        assert!(d.is_array_step());
        assert_eq!(d.index_range(), None);
        assert!(!d.selects_index(0)); // needs the sticky NFA transition
    }

    #[test]
    fn grammar_flags() {
        let p: Path = "$.a..b".parse().unwrap();
        assert!(p.has_descendant());
        assert!(!p.has_filter());
        let p: Path = "$.a[?(@.x > 1)]".parse().unwrap();
        assert!(!p.has_descendant());
        assert!(p.has_filter());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn expected_type_out_of_range_panics() {
        let p: Path = "$.a".parse().unwrap();
        p.expected_type(1);
    }

    #[test]
    #[should_panic(expected = "only child and index")]
    fn filter_expr_rejects_wildcard_steps() {
        FilterExpr::new(vec![Step::AnyChild], None);
    }
}
