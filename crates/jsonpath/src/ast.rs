//! Path AST: steps, type inference, and index constraints.

use std::fmt;
use std::str::FromStr;

use crate::parse::{parse_path, ParsePathError};

/// One step of a JSONPath expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Object child access: `.name` or `['name']`.
    Child(String),
    /// Object wildcard: `.*` — any attribute value.
    AnyChild,
    /// Array index: `[n]`.
    Index(usize),
    /// Array half-open index range: `[m:n]` selects elements `m..n`.
    ///
    /// The paper's `[2:4]` "requests the third and the fourth array
    /// elements", i.e. indices 2 and 3.
    Slice(usize, usize),
    /// Array wildcard: `[*]` — every element.
    AnyElement,
}

impl Step {
    /// Convenience constructor for [`Step::Child`].
    ///
    /// ```
    /// assert_eq!(jsonski_path::Step::child("a"), jsonski_path::Step::Child("a".into()));
    /// ```
    pub fn child(name: impl Into<String>) -> Self {
        Step::Child(name.into())
    }

    /// Whether this step selects from an object.
    pub fn is_object_step(&self) -> bool {
        matches!(self, Step::Child(_) | Step::AnyChild)
    }

    /// Whether this step selects from an array.
    pub fn is_array_step(&self) -> bool {
        matches!(self, Step::Index(_) | Step::Slice(_, _) | Step::AnyElement)
    }

    /// The index range this array step selects, as a half-open interval,
    /// or `None` for non-array steps and the unbounded wildcard.
    ///
    /// ```
    /// use jsonski_path::Step;
    /// assert_eq!(Step::Index(2).index_range(), Some((2, 3)));
    /// assert_eq!(Step::Slice(2, 4).index_range(), Some((2, 4)));
    /// assert_eq!(Step::AnyElement.index_range(), None);
    /// ```
    pub fn index_range(&self) -> Option<(usize, usize)> {
        match *self {
            Step::Index(n) => Some((n, n + 1)),
            Step::Slice(m, n) => Some((m, n)),
            _ => None,
        }
    }

    /// Whether an array element at position `idx` satisfies this step's
    /// index constraint (always true for `[*]`; false for object steps).
    pub fn selects_index(&self, idx: usize) -> bool {
        match *self {
            Step::AnyElement => true,
            Step::Index(n) => idx == n,
            Step::Slice(m, n) => (m..n).contains(&idx),
            Step::Child(_) | Step::AnyChild => false,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Child(name) => write!(f, ".{name}"),
            Step::AnyChild => write!(f, ".*"),
            Step::Index(n) => write!(f, "[{n}]"),
            Step::Slice(m, n) => write!(f, "[{m}:{n}]"),
            Step::AnyElement => write!(f, "[*]"),
        }
    }
}

/// The container type a query step implies for the value it selects
/// (paper Section 3.2: "the data type can be inferred from the query").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpectedType {
    /// The value must be a JSON object (the next step is a child access).
    Object,
    /// The value must be a JSON array (the next step is an array access).
    Array,
    /// The value is at the last level of the path: any type can match.
    Unknown,
}

/// A parsed JSONPath expression: `$` followed by a sequence of [`Step`]s.
///
/// # Example
///
/// ```
/// use jsonski_path::{Path, Step};
/// let p: Path = "$.pd[*].cp[1:3].id".parse()?;
/// assert_eq!(
///     p.steps(),
///     &[
///         Step::child("pd"),
///         Step::AnyElement,
///         Step::child("cp"),
///         Step::Slice(1, 3),
///         Step::child("id"),
///     ]
/// );
/// # Ok::<(), jsonski_path::ParsePathError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// Builds a path from explicit steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Path { steps }
    }

    /// Parses a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] for malformed input, empty ranges, or the
    /// unsupported descendant operator `..`.
    pub fn parse(input: &str) -> Result<Self, ParsePathError> {
        parse_path(input)
    }

    /// The steps of this path, root-first.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps (the depth of the match below the root).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path is just `$` (matching the whole record).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Infers the type of the value selected by step `k` (0-based), per the
    /// paper's Section 3.2: the type of step `k`'s value is dictated by step
    /// `k + 1`; the last step's value type is [`ExpectedType::Unknown`].
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn expected_type(&self, k: usize) -> ExpectedType {
        assert!(k < self.steps.len(), "step index out of range");
        match self.steps.get(k + 1) {
            None => ExpectedType::Unknown,
            Some(s) if s.is_object_step() => ExpectedType::Object,
            Some(_) => ExpectedType::Array,
        }
    }

    /// The container type the *root* record must have for this path to
    /// match anything, or `None` when the path is `$` alone.
    pub fn root_type(&self) -> Option<ExpectedType> {
        self.steps.first().map(|s| {
            if s.is_object_step() {
                ExpectedType::Object
            } else {
                ExpectedType::Array
            }
        })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$")?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips() {
        for q in [
            "$.place.name",
            "$[*].en.urls[*].url",
            "$.pd[*].cp[1:3].id",
            "$.dt[*][*][2:4]",
            "$[10:21].cl.P150[*].ms.pty",
            "$.a.*",
            "$",
        ] {
            let p: Path = q.parse().unwrap();
            assert_eq!(p.to_string(), q);
            let p2: Path = p.to_string().parse().unwrap();
            assert_eq!(p, p2);
        }
    }

    #[test]
    fn expected_type_inference_matches_paper_example() {
        // "$.place.name": place is an object (it has attribute `name`).
        let p: Path = "$.place.name".parse().unwrap();
        assert_eq!(p.expected_type(0), ExpectedType::Object);
        assert_eq!(p.expected_type(1), ExpectedType::Unknown);

        // "$.places[2:4].name": places is an array.
        let p: Path = "$.places[2:4].name".parse().unwrap();
        assert_eq!(p.expected_type(0), ExpectedType::Array);
        assert_eq!(p.expected_type(1), ExpectedType::Object);
        assert_eq!(p.expected_type(2), ExpectedType::Unknown);
    }

    #[test]
    fn root_type() {
        let p: Path = "$[*].text".parse().unwrap();
        assert_eq!(p.root_type(), Some(ExpectedType::Array));
        let p: Path = "$.a".parse().unwrap();
        assert_eq!(p.root_type(), Some(ExpectedType::Object));
        let p: Path = "$".parse().unwrap();
        assert_eq!(p.root_type(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn index_selection_semantics() {
        assert!(Step::Slice(2, 4).selects_index(2));
        assert!(Step::Slice(2, 4).selects_index(3));
        assert!(!Step::Slice(2, 4).selects_index(4));
        assert!(Step::Index(0).selects_index(0));
        assert!(!Step::Index(0).selects_index(1));
        assert!(Step::AnyElement.selects_index(10_000));
        assert!(!Step::child("x").selects_index(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn expected_type_out_of_range_panics() {
        let p: Path = "$.a".parse().unwrap();
        p.expected_type(1);
    }
}
