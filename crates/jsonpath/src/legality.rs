//! Compile-time fast-forward legality analysis.
//!
//! The paper's fast-forward groups (Table 1) are sound only under
//! assumptions the full query grammar can break:
//!
//! * **G1** (type-directed seek to the next candidate opener) assumes the
//!   matching value's type is inferable from the query. Descendant steps
//!   match at any depth in either container kind, so no single type exists.
//! * **G2** (skip an unmatched value) is *always* sound — a value is only
//!   skipped when its state set is empty — but below a live descendant
//!   position no value is ever unmatched, so G2 never fires there.
//! * **G3** (skip a result with output) assumes nothing inside the result
//!   can match again. A live descendant position makes container results
//!   [`AcceptAndDescend`](crate::Status::AcceptAndDescend): they must be
//!   descended, not skipped.
//! * **G4** (skip to the object end after a match) assumes no *sibling*
//!   attribute can match once one did — true only for a single literal
//!   child name (names are unique per RFC 8259 in this reproduction's data
//!   model). Wildcards, unions, and descendants keep matching siblings.
//! * **G5** (skip array elements outside an index window) needs a bounded
//!   index range; wildcards, filters, and descendants are unbounded.
//!
//! [`Path::legality`] is the per-position (i.e. per automaton DFA-state)
//! table, computed from the query alone; [`Runtime::legality`] is the
//! runtime conjunction over the live position set, which is what the engine
//! consults while streaming. For descendant-free queries every state set is
//! a singleton, so the runtime answer *is* the table row — old queries keep
//! exactly their old fast-forward behavior.

use crate::ast::{ExpectedType, Path, Step};
use crate::automaton::Runtime;

/// Which fast-forward groups may soundly fire in a given automaton state.
///
/// `true` means "the engine may attempt this group here"; it does not mean
/// the group will fire (e.g. G2 also needs an actually-unmatched value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Legality {
    /// G1: seek to the next opener of the expected candidate type.
    pub g1: bool,
    /// G2: fast-forward over an unmatched value.
    pub g2: bool,
    /// G3: fast-forward over an accepted value while outputting it.
    pub g3: bool,
    /// G4: after an attribute match, skip to the enclosing object's end.
    pub g4: bool,
    /// G5: skip array elements outside the step's index window.
    pub g5: bool,
}

impl Legality {
    /// Every group enabled (the degenerate answer for dead frames, where
    /// only G2 drains ever run).
    pub const ALL: Legality = Legality {
        g1: true,
        g2: true,
        g3: true,
        g4: true,
        g5: true,
    };

    /// No group enabled.
    pub const NONE: Legality = Legality {
        g1: false,
        g2: false,
        g3: false,
        g4: false,
        g5: false,
    };

    /// Conjunction: a group is legal for a set of positions iff it is legal
    /// for every position.
    #[must_use]
    pub fn and(self, other: Legality) -> Legality {
        Legality {
            g1: self.g1 && other.g1,
            g2: self.g2 && other.g2,
            g3: self.g3 && other.g3,
            g4: self.g4 && other.g4,
            g5: self.g5 && other.g5,
        }
    }
}

impl Path {
    /// The fast-forward legality of the automaton state in which step `k`
    /// is being matched (the singleton state `{k}`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn legality(&self, k: usize) -> Legality {
        assert!(k < self.len(), "step index out of range");
        let step = &self.steps()[k];
        match step {
            // A live descendant position disables everything: types are not
            // inferable (G1), no value below is ever unmatched (G2 cannot
            // fire), results must still be descended (G3), siblings can
            // keep matching (G4), and indices are unbounded (G5).
            Step::Descendant(_) => Legality::NONE,
            _ => Legality {
                g1: self.expected_type(k) != ExpectedType::Unknown,
                g2: true,
                g3: true,
                g4: matches!(step, Step::Child(_)),
                g5: step.index_range().is_some(),
            },
        }
    }
}

impl Runtime<'_> {
    /// The fast-forward legality of the current container's state set: the
    /// conjunction of [`Path::legality`] over all live positions
    /// ([`Legality::ALL`] for a dead frame, where only G2 drains run).
    pub fn legality(&self) -> Legality {
        let mut acc = Legality::ALL;
        let state = self.state();
        for k in 0..self.path().len() {
            if state.contains(k) {
                acc = acc.and(self.path().legality(k));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContainerKind;

    fn p(q: &str) -> Path {
        q.parse().unwrap()
    }

    #[test]
    fn paper_grammar_keeps_all_groups() {
        let path = p("$.pd[*].cp[1:3].id");
        // .pd — literal child: everything but G5 (not an array step).
        let l = path.legality(0);
        assert!(l.g1 && l.g2 && l.g3 && l.g4 && !l.g5);
        // [*] — wildcard element: no G4 (keeps matching), no G5 (unbounded).
        let l = path.legality(1);
        assert!(l.g1 && l.g2 && l.g3 && !l.g4 && !l.g5);
        // [1:3] — bounded slice: G5 legal.
        let l = path.legality(3);
        assert!(l.g1 && l.g2 && l.g3 && !l.g4 && l.g5);
        // .id — final child: G1 off (type Unknown at the last level).
        let l = path.legality(4);
        assert!(!l.g1 && l.g2 && l.g3 && l.g4 && !l.g5);
    }

    #[test]
    fn descendant_disables_everything() {
        let path = p("$..a");
        assert_eq!(path.legality(0), Legality::NONE);
        // ...including through the runtime conjunction below it.
        let mut rt = Runtime::new(&path);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.legality(), Legality::NONE);
        let (st, _) = rt.value_state_for_key("a");
        rt.enter(ContainerKind::Object, st);
        // State is {0 (sticky), 1-is-accept}: still descendant-poisoned.
        assert_eq!(rt.legality(), Legality::NONE);
    }

    #[test]
    fn child_after_descendant_is_still_poisoned_at_runtime() {
        // Per-position, `.b` of `$..a.b` keeps G4; but any *runtime* state
        // containing the sticky descendant position conjoins to NONE.
        let path = p("$..a.b");
        assert!(path.legality(1).g4);
        let mut rt = Runtime::new(&path);
        rt.enter_root(ContainerKind::Object);
        let (st, _) = rt.value_state_for_key("a");
        rt.enter(ContainerKind::Object, st); // {0, 1}: desc + child
        assert_eq!(rt.legality(), Legality::NONE);
    }

    #[test]
    fn unions_and_filters() {
        let path = p("$['a','b'][1,3][?(@.x > 1)].z");
        // Name union: like a wildcard for G4 purposes (siblings may match).
        let l = path.legality(0);
        assert!(l.g1 && !l.g4 && !l.g5);
        // Index union: bounded, so G5 stays legal.
        let l = path.legality(1);
        assert!(l.g1 && !l.g4 && l.g5);
        // Filter: unbounded (any element may pass), expected type inferable.
        let l = path.legality(2);
        assert!(l.g1 && l.g2 && l.g3 && !l.g4 && !l.g5);
        // Final literal child.
        let l = path.legality(3);
        assert!(!l.g1 && l.g4);
    }

    #[test]
    fn runtime_matches_table_for_dfa_states() {
        // Without descendants the runtime state is a singleton, so the
        // runtime legality must equal the per-position table row.
        let path = p("$.a[2:4].b");
        let mut rt = Runtime::new(&path);
        rt.enter_root(ContainerKind::Object);
        assert_eq!(rt.legality(), path.legality(0));
        let (st, _) = rt.value_state_for_key("a");
        rt.enter(ContainerKind::Array, st);
        assert_eq!(rt.legality(), path.legality(1));
    }

    #[test]
    fn dead_frames_report_all() {
        let path = p("$.a.b");
        let mut rt = Runtime::new(&path);
        rt.enter_root(ContainerKind::Object);
        let (st, _) = rt.value_state_for_key("nope");
        rt.enter(ContainerKind::Object, st);
        assert_eq!(rt.legality(), Legality::ALL);
    }
}
