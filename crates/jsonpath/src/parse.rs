//! Recursive-descent parser for the supported JSONPath grammar.
//!
//! Supported syntax: root `$`; child `.name` / `['name']`; wildcards `.*` /
//! `[*]`; index `[n]`, half-open slice `[m:n]`; unions `['a','b']` / `[1,3]`;
//! descendant `..name` / `..*` / `..[...]`; and comparison filters
//! `[?(@.path op literal)]` (array elements only, with the operator-less
//! existence form `[?(@.path)]`).
//!
//! Errors carry the byte offset of the offending character so callers can
//! point at the problem.

use std::error::Error;
use std::fmt;

use crate::ast::{CmpOp, FilterExpr, Literal, Path, Step};

/// Error produced when parsing a JSONPath expression fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePathError {
    kind: ErrorKind,
    /// Byte offset in the input where the problem was detected.
    at: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ErrorKind {
    MissingRoot,
    EmptyName,
    EmptyBrackets,
    BadIndex,
    EmptyRange,
    UnexpectedChar(char),
    UnclosedBracket,
    UnclosedQuote,
    BadUnion,
    BadFilter,
    BadLiteral,
    FilterPathStep,
    TooManySteps,
}

impl ParsePathError {
    fn new(kind: ErrorKind, at: usize) -> Self {
        ParsePathError { kind, at }
    }

    /// Byte offset in the query string where the error was detected.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match &self.kind {
            ErrorKind::MissingRoot => "path must start with `$`",
            ErrorKind::EmptyName => "empty attribute name after `.`",
            ErrorKind::EmptyBrackets => "empty brackets `[]`",
            ErrorKind::BadIndex => "array index is not a valid number",
            ErrorKind::EmptyRange => "index range selects no elements",
            ErrorKind::UnexpectedChar(c) => {
                return write!(f, "unexpected character `{c}` at offset {}", self.at)
            }
            ErrorKind::UnclosedBracket => "unclosed `[`",
            ErrorKind::UnclosedQuote => "unclosed quote in bracketed name",
            ErrorKind::BadUnion => "malformed union selector (expected `['a','b']` or `[1,3]`)",
            ErrorKind::BadFilter => "malformed filter (expected `[?(@.path op literal)]`)",
            ErrorKind::BadLiteral => {
                "malformed filter literal (expected a number, quoted string, `true`, `false`, or `null`)"
            }
            ErrorKind::FilterPathStep => "filter paths support only child and index steps",
            ErrorKind::TooManySteps => {
                return write!(
                    f,
                    "path exceeds the supported {} steps at offset {}",
                    Path::MAX_STEPS,
                    self.at
                )
            }
        };
        write!(f, "{msg} at offset {}", self.at)
    }
}

impl Error for ParsePathError {}

fn err(kind: ErrorKind, at: usize) -> ParsePathError {
    ParsePathError::new(kind, at)
}

fn skip_ws(bytes: &[u8], mut k: usize, end: usize) -> usize {
    while k < end && bytes[k].is_ascii_whitespace() {
        k += 1;
    }
    k
}

/// Parses a JSONPath string into a [`Path`].
pub(crate) fn parse_path(input: &str) -> Result<Path, ParsePathError> {
    let bytes = input.as_bytes();
    if bytes.first() != Some(&b'$') {
        return Err(err(ErrorKind::MissingRoot, 0));
    }
    let mut steps = Vec::new();
    let mut i = 1;
    while i < bytes.len() {
        let step_at = i;
        let step = match bytes[i] {
            b'.' if bytes.get(i + 1) == Some(&b'.') => {
                // Descendant step: `..name`, `..*`, or `..[...]`.
                i += 2;
                let inner = match bytes.get(i) {
                    Some(b'*') => {
                        i += 1;
                        Step::AnyChild
                    }
                    Some(b'[') => {
                        let (s, next) = parse_bracket(input, i)?;
                        i = next;
                        s
                    }
                    Some(&c) if c != b'.' => {
                        let start = i;
                        while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                            i += 1;
                        }
                        debug_assert!(i > start);
                        let _ = c;
                        Step::Child(input[start..i].to_string())
                    }
                    _ => return Err(err(ErrorKind::EmptyName, i)),
                };
                Step::Descendant(Box::new(inner))
            }
            b'.' => {
                i += 1;
                if bytes.get(i) == Some(&b'*') {
                    i += 1;
                    Step::AnyChild
                } else {
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                        i += 1;
                    }
                    if i == start {
                        return Err(err(ErrorKind::EmptyName, start));
                    }
                    Step::Child(input[start..i].to_string())
                }
            }
            b'[' => {
                let (s, next) = parse_bracket(input, i)?;
                i = next;
                s
            }
            c => return Err(err(ErrorKind::UnexpectedChar(c as char), i)),
        };
        if steps.len() == Path::MAX_STEPS {
            return Err(err(ErrorKind::TooManySteps, step_at));
        }
        steps.push(step);
    }
    Ok(Path::new(steps))
}

/// Parses one bracketed selector starting at the `[` at `open`. Returns the
/// step and the offset just past the closing `]`.
fn parse_bracket(input: &str, open: usize) -> Result<(Step, usize), ParsePathError> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[open], b'[');
    // Quote- and nesting-aware scan for the matching `]` (filter bodies may
    // contain `]` inside string literals or nested `@[n]` accesses).
    let mut depth = 1usize;
    let mut j = open + 1;
    let close = loop {
        match bytes.get(j) {
            None => return Err(err(ErrorKind::UnclosedBracket, open)),
            Some(&q) if q == b'\'' || q == b'"' => {
                let qstart = j;
                j += 1;
                loop {
                    match bytes.get(j) {
                        None => return Err(err(ErrorKind::UnclosedQuote, qstart)),
                        Some(b'\\') => j += 2,
                        Some(&c) if c == q => {
                            j += 1;
                            break;
                        }
                        Some(_) => j += 1,
                    }
                }
            }
            Some(b'[') => {
                depth += 1;
                j += 1;
            }
            Some(b']') => {
                depth -= 1;
                if depth == 0 {
                    break j;
                }
                j += 1;
            }
            Some(_) => j += 1,
        }
    };
    let bstart = skip_ws(bytes, open + 1, close);
    let mut bend = close;
    while bend > bstart && bytes[bend - 1].is_ascii_whitespace() {
        bend -= 1;
    }
    if bstart == bend {
        return Err(err(ErrorKind::EmptyBrackets, open));
    }
    let step = match bytes[bstart] {
        b'*' => {
            if bend - bstart != 1 {
                return Err(err(ErrorKind::BadUnion, bstart));
            }
            Step::AnyElement
        }
        b'?' => parse_filter(input, bstart, bend)?,
        b'\'' | b'"' => parse_name_union(input, bstart, bend)?,
        _ => parse_index_like(input, bstart, bend)?,
    };
    Ok((step, close + 1))
}

/// Parses a quoted name starting at the quote at `k`. Only `\'`, `\"`, and
/// `\\` are unescaped; any other backslash sequence is kept verbatim (names
/// are compared against *decoded* attribute names by [`crate::names`]).
/// Returns the name and the offset just past the closing quote.
fn parse_quoted(input: &str, k: usize) -> Result<(String, usize), ParsePathError> {
    let bytes = input.as_bytes();
    let q = bytes[k];
    let mut out = String::new();
    let mut j = k + 1;
    let mut run = j;
    loop {
        match bytes.get(j) {
            None => return Err(err(ErrorKind::UnclosedQuote, k)),
            Some(b'\\') => {
                out.push_str(&input[run..j]);
                match bytes.get(j + 1) {
                    Some(&c) if c == q || c == b'\\' => {
                        out.push(c as char);
                        j += 2;
                    }
                    Some(_) => {
                        out.push('\\');
                        j += 1;
                    }
                    None => return Err(err(ErrorKind::UnclosedQuote, k)),
                }
                run = j;
            }
            Some(&c) if c == q => {
                out.push_str(&input[run..j]);
                return Ok((out, j + 1));
            }
            Some(_) => j += 1,
        }
    }
}

/// `['a']` / `['a','b',...]` — one or more quoted names separated by commas.
fn parse_name_union(input: &str, bstart: usize, bend: usize) -> Result<Step, ParsePathError> {
    let bytes = input.as_bytes();
    let mut names: Vec<String> = Vec::new();
    let mut k = bstart;
    loop {
        k = skip_ws(bytes, k, bend);
        if k >= bend || (bytes[k] != b'\'' && bytes[k] != b'"') {
            return Err(err(ErrorKind::BadUnion, k.min(bend.saturating_sub(1))));
        }
        let quote_at = k;
        let (name, next) = parse_quoted(input, k)?;
        if name.is_empty() {
            return Err(err(ErrorKind::EmptyName, quote_at));
        }
        if !names.contains(&name) {
            names.push(name);
        }
        k = skip_ws(bytes, next, bend);
        if k >= bend {
            break;
        }
        if bytes[k] != b',' {
            return Err(err(ErrorKind::BadUnion, k));
        }
        k += 1;
    }
    Ok(if names.len() == 1 {
        Step::Child(names.pop().expect("one name"))
    } else {
        Step::NameUnion(names)
    })
}

/// `[n]`, `[m:n]`, or `[1,3,...]`.
fn parse_index_like(input: &str, bstart: usize, bend: usize) -> Result<Step, ParsePathError> {
    let body = &input[bstart..bend];
    if let Some((lo, hi)) = body.split_once(':') {
        let lo: usize = lo
            .trim()
            .parse()
            .map_err(|_| err(ErrorKind::BadIndex, bstart))?;
        let hi: usize = hi
            .trim()
            .parse()
            .map_err(|_| err(ErrorKind::BadIndex, bstart))?;
        if hi <= lo {
            return Err(err(ErrorKind::EmptyRange, bstart));
        }
        return Ok(Step::Slice(lo, hi));
    }
    if body.contains(',') {
        let mut indices: Vec<usize> = Vec::new();
        for part in body.split(',') {
            let n: usize = part
                .trim()
                .parse()
                .map_err(|_| err(ErrorKind::BadUnion, bstart))?;
            indices.push(n);
        }
        indices.sort_unstable();
        indices.dedup();
        return Ok(if indices.len() == 1 {
            Step::Index(indices[0])
        } else {
            Step::IndexUnion(indices)
        });
    }
    body.parse::<usize>()
        .map(Step::Index)
        .map_err(|_| err(ErrorKind::BadIndex, bstart))
}

/// `?( @.path op literal )` or the existence form `?( @.path )`, spanning
/// `input[bstart..bend]` (whitespace-trimmed, `bytes[bstart] == b'?'`).
fn parse_filter(input: &str, bstart: usize, bend: usize) -> Result<Step, ParsePathError> {
    let bytes = input.as_bytes();
    let mut k = skip_ws(bytes, bstart + 1, bend);
    if k >= bend || bytes[k] != b'(' {
        return Err(err(ErrorKind::BadFilter, k.min(bend.saturating_sub(1))));
    }
    if bytes[bend - 1] != b')' {
        return Err(err(ErrorKind::BadFilter, bend - 1));
    }
    k += 1;
    let end = bend - 1; // exclusive: the final `)`
    k = skip_ws(bytes, k, end);
    if k >= end || bytes[k] != b'@' {
        return Err(err(ErrorKind::BadFilter, k.min(end.saturating_sub(1))));
    }
    k += 1;

    // `@`-relative path: `.name` and `[n]` / `['name']` steps only.
    let mut fsteps: Vec<Step> = Vec::new();
    while k < end {
        match bytes[k] {
            b'.' => {
                k += 1;
                let start = k;
                while k < end
                    && !matches!(bytes[k], b'.' | b'[' | b'=' | b'!' | b'<' | b'>')
                    && !bytes[k].is_ascii_whitespace()
                {
                    k += 1;
                }
                if k == start {
                    return Err(err(ErrorKind::EmptyName, start));
                }
                let name = &input[start..k];
                if name == "*" {
                    return Err(err(ErrorKind::FilterPathStep, start));
                }
                fsteps.push(Step::Child(name.to_string()));
            }
            b'[' => {
                let bopen = k;
                k = skip_ws(bytes, k + 1, end);
                if k < end && (bytes[k] == b'\'' || bytes[k] == b'"') {
                    let (name, next) = parse_quoted(input, k)?;
                    if name.is_empty() {
                        return Err(err(ErrorKind::EmptyName, k));
                    }
                    fsteps.push(Step::Child(name));
                    k = next;
                } else {
                    let start = k;
                    while k < end && bytes[k].is_ascii_digit() {
                        k += 1;
                    }
                    if k == start {
                        return Err(err(ErrorKind::FilterPathStep, start.min(end)));
                    }
                    let n: usize = input[start..k]
                        .parse()
                        .map_err(|_| err(ErrorKind::BadIndex, start))?;
                    fsteps.push(Step::Index(n));
                }
                k = skip_ws(bytes, k, end);
                if k >= end || bytes[k] != b']' {
                    return Err(err(ErrorKind::UnclosedBracket, bopen));
                }
                k += 1;
            }
            c if c.is_ascii_whitespace() || matches!(c, b'=' | b'!' | b'<' | b'>') => break,
            _ => return Err(err(ErrorKind::BadFilter, k)),
        }
    }

    k = skip_ws(bytes, k, end);
    if k >= end {
        return Ok(Step::Filter(FilterExpr::new(fsteps, None)));
    }

    let op = match (bytes[k], bytes.get(k + 1).copied().filter(|_| k + 1 < end)) {
        (b'=', Some(b'=')) => {
            k += 2;
            CmpOp::Eq
        }
        (b'!', Some(b'=')) => {
            k += 2;
            CmpOp::Ne
        }
        (b'<', Some(b'=')) => {
            k += 2;
            CmpOp::Le
        }
        (b'>', Some(b'=')) => {
            k += 2;
            CmpOp::Ge
        }
        (b'<', _) => {
            k += 1;
            CmpOp::Lt
        }
        (b'>', _) => {
            k += 1;
            CmpOp::Gt
        }
        _ => return Err(err(ErrorKind::BadFilter, k)),
    };

    k = skip_ws(bytes, k, end);
    if k >= end {
        return Err(err(ErrorKind::BadLiteral, end));
    }
    let lit_at = k;
    let literal = match bytes[k] {
        b'\'' | b'"' => {
            let (s, next) = parse_quoted(input, k)?;
            k = next;
            Literal::Str(s)
        }
        _ => {
            let start = k;
            while k < end && !bytes[k].is_ascii_whitespace() {
                k += 1;
            }
            let text = &input[start..k];
            match text {
                "true" => Literal::Bool(true),
                "false" => Literal::Bool(false),
                "null" => Literal::Null,
                _ => {
                    let numeric = !text.is_empty()
                        && text.bytes().all(|b| {
                            b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                        })
                        && text.parse::<f64>().is_ok();
                    if !numeric {
                        return Err(err(ErrorKind::BadLiteral, lit_at));
                    }
                    Literal::Number(text.to_string())
                }
            }
        }
    };

    k = skip_ws(bytes, k, end);
    if k != end {
        return Err(err(ErrorKind::BadFilter, k));
    }
    Ok(Step::Filter(FilterExpr::new(fsteps, Some((op, literal)))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps(q: &str) -> Vec<Step> {
        parse_path(q).unwrap().steps().to_vec()
    }

    fn desc(inner: Step) -> Step {
        Step::Descendant(Box::new(inner))
    }

    #[test]
    fn parses_all_paper_queries() {
        // Table 5 query structures.
        let queries = [
            "$[*].en.urls[*].url",
            "$[*].text",
            "$.pd[*].cp[1:3].id",
            "$.pd[*].vc[*].cha",
            "$[*].rt[*].lg[*].st[*].dt.tx",
            "$[*].atm",
            "$.mt.vw.co[*].nm",
            "$.dt[*][*][2:4]",
            "$.it[*].bmrpr.pr",
            "$.it[*].nm",
            "$[*].cl.P150[*].ms.pty",
            "$[10:21].cl.P150[*].ms.pty",
        ];
        for q in queries {
            let p = parse_path(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!p.is_empty(), "{q}");
        }
    }

    #[test]
    fn bracket_child_forms() {
        assert_eq!(steps("$['name']"), vec![Step::child("name")]);
        assert_eq!(steps("$[\"name\"]"), vec![Step::child("name")]);
        assert_eq!(
            steps("$.a['b'].c"),
            vec![Step::child("a"), Step::child("b"), Step::child("c")]
        );
        // Escapes: quote and backslash unescape; `]` inside quotes is fine.
        assert_eq!(steps(r"$['a\'b']"), vec![Step::child("a'b")]);
        assert_eq!(steps(r"$['a\\b']"), vec![Step::child("a\\b")]);
        assert_eq!(steps("$[']']"), vec![Step::child("]")]);
    }

    #[test]
    fn index_and_slice() {
        assert_eq!(steps("$[0]"), vec![Step::Index(0)]);
        assert_eq!(steps("$[10:21]"), vec![Step::Slice(10, 21)]);
        assert_eq!(steps("$[ 2 : 4 ]"), vec![Step::Slice(2, 4)]);
    }

    #[test]
    fn wildcards() {
        assert_eq!(steps("$[*]"), vec![Step::AnyElement]);
        assert_eq!(steps("$.*"), vec![Step::AnyChild]);
    }

    #[test]
    fn unions() {
        assert_eq!(
            steps("$['a','b']"),
            vec![Step::NameUnion(vec!["a".into(), "b".into()])]
        );
        assert_eq!(
            steps("$[ 'a' , \"b\" , 'c' ]"),
            vec![Step::NameUnion(vec!["a".into(), "b".into(), "c".into()])]
        );
        // Duplicates deduplicate; a single-name union is a plain child.
        assert_eq!(steps("$['a','a']"), vec![Step::child("a")]);
        assert_eq!(steps("$[1,3]"), vec![Step::IndexUnion(vec![1, 3])]);
        // Indices sort + dedup.
        assert_eq!(steps("$[3, 1, 3]"), vec![Step::IndexUnion(vec![1, 3])]);
        assert_eq!(steps("$[2,2]"), vec![Step::Index(2)]);
    }

    #[test]
    fn descendants() {
        assert_eq!(steps("$..name"), vec![desc(Step::child("name"))]);
        assert_eq!(steps("$..*"), vec![desc(Step::AnyChild)]);
        assert_eq!(steps("$..[0]"), vec![desc(Step::Index(0))]);
        assert_eq!(steps("$..[*]"), vec![desc(Step::AnyElement)]);
        assert_eq!(
            steps("$..['a','b']"),
            vec![desc(Step::NameUnion(vec!["a".into(), "b".into()]))]
        );
        assert_eq!(
            steps("$.a..b[1:3]"),
            vec![Step::child("a"), desc(Step::child("b")), Step::Slice(1, 3)]
        );
    }

    #[test]
    fn filters() {
        let f = |steps: Vec<Step>, cmp| Step::Filter(FilterExpr::new(steps, cmp));
        assert_eq!(
            steps("$.a[?(@.x == 10)]"),
            vec![
                Step::child("a"),
                f(
                    vec![Step::child("x")],
                    Some((CmpOp::Eq, Literal::Number("10".into())))
                )
            ]
        );
        assert_eq!(
            steps("$.a[?(@.x.y<=-1.5e2)]"),
            vec![
                Step::child("a"),
                f(
                    vec![Step::child("x"), Step::child("y")],
                    Some((CmpOp::Le, Literal::Number("-1.5e2".into())))
                )
            ]
        );
        assert_eq!(
            steps("$.a[?(@[2] != 'v]')]"),
            vec![
                Step::child("a"),
                f(
                    vec![Step::Index(2)],
                    Some((CmpOp::Ne, Literal::Str("v]".into())))
                )
            ]
        );
        assert_eq!(
            steps("$.a[?(@['k k'] == true)]"),
            vec![
                Step::child("a"),
                f(
                    vec![Step::child("k k")],
                    Some((CmpOp::Eq, Literal::Bool(true)))
                )
            ]
        );
        assert_eq!(
            steps("$.a[?(@.x == null)]"),
            vec![
                Step::child("a"),
                f(vec![Step::child("x")], Some((CmpOp::Eq, Literal::Null)))
            ]
        );
        // Existence form and bare-@ comparison.
        assert_eq!(
            steps("$.a[?(@.x)]"),
            vec![Step::child("a"), f(vec![Step::child("x")], None)]
        );
        assert_eq!(
            steps("$.a[?(@ > 3)]"),
            vec![
                Step::child("a"),
                f(vec![], Some((CmpOp::Gt, Literal::Number("3".into()))))
            ]
        );
        // Descendant filter.
        assert_eq!(
            steps("$..[?(@.id)]"),
            vec![desc(f(vec![Step::child("id")], None))]
        );
    }

    #[test]
    fn root_only() {
        assert_eq!(steps("$"), vec![]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_path("place.name").is_err()); // missing $
        assert!(parse_path("$.").is_err()); // empty name
        assert!(parse_path("$[]").is_err()); // empty brackets
        assert!(parse_path("$[abc]").is_err()); // bad index
        assert!(parse_path("$[3:3]").is_err()); // empty range
        assert!(parse_path("$[4:2]").is_err()); // inverted range
        assert!(parse_path("$[1").is_err()); // unclosed bracket
        assert!(parse_path("$['x]").is_err()); // unclosed quote
        assert!(parse_path("$x").is_err()); // junk after root
        assert!(parse_path("$..").is_err()); // bare descendant
        assert!(parse_path("$...a").is_err()); // triple dot
        assert!(parse_path("$['a',3]").is_err()); // mixed union
        assert!(parse_path("$[1,]").is_err()); // trailing comma
        assert!(parse_path("$[*,1]").is_err()); // wildcard in union
        assert!(parse_path("$[?(@.x ==)]").is_err()); // missing literal
        assert!(parse_path("$[?(@.x = 1)]").is_err()); // bad operator
        assert!(parse_path("$[?(@.* == 1)]").is_err()); // wildcard filter path
        assert!(parse_path("$[?(@..x)]").is_err()); // descendant filter path
        assert!(parse_path("$[?(@.x == nul)]").is_err()); // bad keyword
        assert!(parse_path("$[?@.x]").is_err()); // missing parens
        assert!(parse_path("$[?(@.x]").is_err()); // unclosed paren
    }

    #[test]
    fn rejects_too_many_steps() {
        let q = format!("${}", ".a".repeat(Path::MAX_STEPS + 1));
        let e = parse_path(&q).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
        assert_eq!(e.offset(), 1 + 2 * Path::MAX_STEPS);
        let ok = format!("${}", ".a".repeat(Path::MAX_STEPS));
        assert!(parse_path(&ok).is_ok());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        assert_eq!(parse_path("$.a[").unwrap_err().offset(), 3);
        assert_eq!(parse_path("$..").unwrap_err().offset(), 3); // name expected at 3
        assert_eq!(parse_path("$.a..").unwrap_err().offset(), 5);
        assert_eq!(parse_path("$['x]").unwrap_err().offset(), 2); // quote at 2
        assert_eq!(parse_path("$['a',3]").unwrap_err().offset(), 6); // `3` not quoted
        assert_eq!(parse_path("$.a[?(@.x ==)]").unwrap_err().offset(), 12); // `)` where literal expected
        assert_eq!(parse_path("$[?(@.* == 1)]").unwrap_err().offset(), 6); // the `*`
        assert_eq!(parse_path("$[?(@.x = 1)]").unwrap_err().offset(), 8); // the lone `=`
        assert_eq!(parse_path("$[?(@.x == zzz)]").unwrap_err().offset(), 11); // the literal
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(parse_path("$[]").unwrap_err());
    }
}
