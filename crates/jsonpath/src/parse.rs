//! Recursive-descent parser for the supported JSONPath subset.

use std::error::Error;
use std::fmt;

use crate::ast::{Path, Step};

/// Error produced when parsing a JSONPath expression fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePathError {
    kind: ErrorKind,
    /// Byte offset in the input where the problem was detected.
    at: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ErrorKind {
    MissingRoot,
    Descendant,
    EmptyName,
    EmptyBrackets,
    BadIndex,
    EmptyRange,
    UnexpectedChar(char),
    UnclosedBracket,
    UnclosedQuote,
}

impl ParsePathError {
    fn new(kind: ErrorKind, at: usize) -> Self {
        ParsePathError { kind, at }
    }

    /// Byte offset in the query string where the error was detected.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match &self.kind {
            ErrorKind::MissingRoot => "path must start with `$`",
            ErrorKind::Descendant => {
                "descendant operator `..` is not supported (paper Section 5.1)"
            }
            ErrorKind::EmptyName => "empty attribute name after `.`",
            ErrorKind::EmptyBrackets => "empty brackets `[]`",
            ErrorKind::BadIndex => "array index is not a valid number",
            ErrorKind::EmptyRange => "index range selects no elements",
            ErrorKind::UnexpectedChar(c) => {
                return write!(f, "unexpected character `{c}` at offset {}", self.at)
            }
            ErrorKind::UnclosedBracket => "unclosed `[`",
            ErrorKind::UnclosedQuote => "unclosed quote in bracketed name",
        };
        write!(f, "{msg} at offset {}", self.at)
    }
}

impl Error for ParsePathError {}

/// Parses a JSONPath string into a [`Path`].
pub(crate) fn parse_path(input: &str) -> Result<Path, ParsePathError> {
    let bytes = input.as_bytes();
    if bytes.first() != Some(&b'$') {
        return Err(ParsePathError::new(ErrorKind::MissingRoot, 0));
    }
    let mut steps = Vec::new();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    return Err(ParsePathError::new(ErrorKind::Descendant, i));
                }
                i += 1;
                if bytes.get(i) == Some(&b'*') {
                    steps.push(Step::AnyChild);
                    i += 1;
                    continue;
                }
                let start = i;
                while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                    i += 1;
                }
                if i == start {
                    return Err(ParsePathError::new(ErrorKind::EmptyName, start));
                }
                steps.push(Step::Child(input[start..i].to_string()));
            }
            b'[' => {
                let open = i;
                i += 1;
                let close = match input[i..].find(']') {
                    Some(off) => i + off,
                    None => return Err(ParsePathError::new(ErrorKind::UnclosedBracket, open)),
                };
                let body = input[i..close].trim();
                if body.is_empty() {
                    return Err(ParsePathError::new(ErrorKind::EmptyBrackets, open));
                }
                steps.push(parse_bracket_body(body, i)?);
                i = close + 1;
            }
            c => return Err(ParsePathError::new(ErrorKind::UnexpectedChar(c as char), i)),
        }
    }
    Ok(Path::new(steps))
}

fn parse_bracket_body(body: &str, at: usize) -> Result<Step, ParsePathError> {
    if body == "*" {
        return Ok(Step::AnyElement);
    }
    if let Some(stripped) = body.strip_prefix('\'').or_else(|| body.strip_prefix('"')) {
        let quote = body.chars().next().expect("non-empty");
        let inner = stripped
            .strip_suffix(quote)
            .ok_or_else(|| ParsePathError::new(ErrorKind::UnclosedQuote, at))?;
        if inner.is_empty() {
            return Err(ParsePathError::new(ErrorKind::EmptyName, at));
        }
        return Ok(Step::Child(inner.to_string()));
    }
    if let Some((lo, hi)) = body.split_once(':') {
        let lo: usize = lo
            .trim()
            .parse()
            .map_err(|_| ParsePathError::new(ErrorKind::BadIndex, at))?;
        let hi: usize = hi
            .trim()
            .parse()
            .map_err(|_| ParsePathError::new(ErrorKind::BadIndex, at))?;
        if hi <= lo {
            return Err(ParsePathError::new(ErrorKind::EmptyRange, at));
        }
        return Ok(Step::Slice(lo, hi));
    }
    body.parse::<usize>()
        .map(Step::Index)
        .map_err(|_| ParsePathError::new(ErrorKind::BadIndex, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps(q: &str) -> Vec<Step> {
        parse_path(q).unwrap().steps().to_vec()
    }

    #[test]
    fn parses_all_paper_queries() {
        // Table 5 query structures.
        let queries = [
            "$[*].en.urls[*].url",
            "$[*].text",
            "$.pd[*].cp[1:3].id",
            "$.pd[*].vc[*].cha",
            "$[*].rt[*].lg[*].st[*].dt.tx",
            "$[*].atm",
            "$.mt.vw.co[*].nm",
            "$.dt[*][*][2:4]",
            "$.it[*].bmrpr.pr",
            "$.it[*].nm",
            "$[*].cl.P150[*].ms.pty",
            "$[10:21].cl.P150[*].ms.pty",
        ];
        for q in queries {
            let p = parse_path(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!p.is_empty(), "{q}");
        }
    }

    #[test]
    fn bracket_child_forms() {
        assert_eq!(steps("$['name']"), vec![Step::child("name")]);
        assert_eq!(steps("$[\"name\"]"), vec![Step::child("name")]);
        assert_eq!(
            steps("$.a['b'].c"),
            vec![Step::child("a"), Step::child("b"), Step::child("c")]
        );
    }

    #[test]
    fn index_and_slice() {
        assert_eq!(steps("$[0]"), vec![Step::Index(0)]);
        assert_eq!(steps("$[10:21]"), vec![Step::Slice(10, 21)]);
        assert_eq!(steps("$[ 2 : 4 ]"), vec![Step::Slice(2, 4)]);
    }

    #[test]
    fn wildcards() {
        assert_eq!(steps("$[*]"), vec![Step::AnyElement]);
        assert_eq!(steps("$.*"), vec![Step::AnyChild]);
    }

    #[test]
    fn root_only() {
        assert_eq!(steps("$"), vec![]);
    }

    #[test]
    fn rejects_descendant() {
        let err = parse_path("$..name").unwrap_err();
        assert!(err.to_string().contains("descendant"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_path("place.name").is_err()); // missing $
        assert!(parse_path("$.").is_err()); // empty name
        assert!(parse_path("$[]").is_err()); // empty brackets
        assert!(parse_path("$[abc]").is_err()); // bad index
        assert!(parse_path("$[3:3]").is_err()); // empty range
        assert!(parse_path("$[4:2]").is_err()); // inverted range
        assert!(parse_path("$[1").is_err()); // unclosed bracket
        assert!(parse_path("$['x]").is_err()); // unclosed quote
        assert!(parse_path("$x").is_err()); // junk after root
    }

    #[test]
    fn error_offsets_point_at_problem() {
        assert_eq!(parse_path("$.a..b").unwrap_err().offset(), 3);
        assert_eq!(parse_path("$.a[").unwrap_err().offset(), 3);
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(parse_path("$[]").unwrap_err());
    }
}
