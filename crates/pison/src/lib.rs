//! Pison-class baseline: leveled colon/comma bitmap structural index
//! construction, then index-guided query evaluation.
//!
//! Following Mison (Li et al., VLDB 2017) and Pison (Jiang, Qiu & Zhao,
//! VLDB 2020), this engine *preprocesses* the record into **leveled
//! bitmaps**: for every nesting level up to the query's depth, a bitmap of
//! the structural colons (locating object attributes) and commas (locating
//! array elements) at that level — the structure the paper's Figure 3-(b)
//! illustrates. Query evaluation then jumps from colon to colon / comma to
//! comma without re-parsing, but only after paying to index the entire
//! record, and while holding index memory proportional to
//! `input_len / 8 * 2 * levels` bytes (the paper's Figure 13 shows this
//! costing gigabytes at stream scale).
//!
//! [`build_parallel`] reproduces Pison's contribution proper: *speculative*
//! chunk-parallel index construction — each chunk assumes it starts outside
//! any string with no pending escape, chunks are validated left to right,
//! mis-speculated chunks re-execute, and per-chunk relative nesting depths
//! are rebased by a prefix sum of depth deltas.
//!
//! # Example
//!
//! ```
//! use pison::LeveledIndex;
//!
//! let json = br#"{"pd": [{"id": 1}, {"id": 2}]}"#;
//! let path: jsonpath::Path = "$.pd[*].id".parse()?;
//! let index = LeveledIndex::build(json, path.len());
//! assert_eq!(index.query(&path), vec![&b"1"[..], &b"2"[..]]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod build;
mod evaluate;
mod parallel;
mod query;
pub mod validate;

pub use build::LeveledIndex;
pub use evaluate::PisonQuery;
pub use parallel::build_parallel;
