//! Index-guided query evaluation: jump colon-to-colon across object
//! attributes and comma-to-comma across array elements (paper Figure 3-(b)).
//!
//! The walker carries the query automaton's position set ([`State`]) down
//! the record, calling the shared transitions ([`Path::on_key`],
//! [`Path::on_element`], [`Path::prune_state`]) at each edge. Matches are
//! emitted *before* recursing so the output order is span-start ascending
//! (pre-order), byte-identical to the streaming engines. Filter predicates
//! probe the element's raw bytes directly from the input.

use jsonpath::{ContainerKind, Path, State, Status};

use crate::build::{trim, LeveledIndex};

/// Collects matches within the value spanning `span` at nesting `level`
/// (level = number of containers entered so far), whose automaton value
/// state is `state` (possibly carrying the accept bit).
pub(crate) fn collect<'a>(
    index: &LeveledIndex<'a>,
    span: (usize, usize),
    level: usize,
    path: &Path,
    state: State,
    out: &mut Vec<&'a [u8]>,
) {
    let input = index.input();
    let (s, e) = span;
    match path.status_of(state) {
        Status::Unmatched => return,
        Status::Accept => {
            out.push(&input[s..e]);
            return;
        }
        Status::AcceptAndDescend => out.push(&input[s..e]),
        Status::Matched => {}
    }
    if level >= index.levels() {
        // The index does not describe structure this deep; properly sized
        // indexes (see [`LeveledIndex::levels_for`]) never reach here with
        // live positions remaining.
        return;
    }
    match input[s] {
        b'{' => {
            let set = path.prune_state(state, ContainerKind::Object);
            if set.is_unmatched() {
                return;
            }
            // Attribute k's value runs from its colon to the next level-
            // `level` comma (or the closing brace).
            let inner_end = e - 1; // position of '}'
            for colon in index.colons_in(level, s + 1, inner_end) {
                let value_end = index
                    .next_comma(level, colon + 1, inner_end)
                    .unwrap_or(inner_end);
                let Some((ks, ke)) = attr_name_span(input, colon) else {
                    continue;
                };
                let vs = path.on_key(set, &input[ks..ke]);
                let vspan = trim(input, colon + 1, value_end);
                if vspan.0 < vspan.1 {
                    collect(index, vspan, level + 1, path, vs, out);
                }
            }
        }
        b'[' => {
            let set = path.prune_state(state, ContainerKind::Array);
            if set.is_unmatched() {
                return;
            }
            let inner_end = e - 1; // position of ']'
            let mut elem_start = s + 1;
            let mut counter = 0usize;
            loop {
                let elem_end = index
                    .next_comma(level, elem_start, inner_end)
                    .unwrap_or(inner_end);
                let espan = trim(input, elem_start, elem_end);
                if espan.0 < espan.1 {
                    let vs = path.on_element(set, counter, &mut |expr| {
                        jsonpath::filter::eval(expr, &input[espan.0..])
                    });
                    collect(index, espan, level + 1, path, vs, out);
                    counter += 1;
                }
                if elem_end == inner_end {
                    break;
                }
                elem_start = elem_end + 1;
            }
        }
        _ => {} // primitive: nothing can match deeper
    }
}

/// Recovers the raw span of the attribute name ending just before `colon`:
/// scan backwards over whitespace to the closing quote, then back to the
/// opening quote (a quote opens the name iff it is preceded by an even
/// number of backslashes). No tokenization of other attributes — the index
/// already localized the candidate. The returned span excludes the quotes;
/// the automaton compares it escape-aware like every other engine.
fn attr_name_span(input: &[u8], colon: usize) -> Option<(usize, usize)> {
    let mut i = colon;
    while i > 0 && matches!(input[i - 1], b' ' | b'\t' | b'\n' | b'\r') {
        i -= 1;
    }
    if i == 0 || input[i - 1] != b'"' {
        return None;
    }
    let close = i - 1;
    let mut j = close;
    while j > 0 {
        j -= 1;
        if input[j] == b'"' {
            let mut backslashes = 0;
            while backslashes < j && input[j - 1 - backslashes] == b'\\' {
                backslashes += 1;
            }
            if backslashes % 2 == 0 {
                return Some((j + 1, close));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::LeveledIndex;
    use jsonpath::Path;

    fn q<'a>(json: &'a [u8], query: &str) -> Vec<&'a [u8]> {
        let path: Path = query.parse().unwrap();
        LeveledIndex::build(json, LeveledIndex::levels_for(json, &path)).query(&path)
    }

    #[test]
    fn child_chain() {
        let json = br#"{"a": {"b": 7}, "c": {"b": 8}}"#;
        assert_eq!(q(json, "$.a.b"), vec![b"7"]);
        assert_eq!(q(json, "$.*.b"), vec![&b"7"[..], b"8"]);
    }

    #[test]
    fn array_partitioning() {
        let json = br#"[10, [20, 21], {"x": 30}, 40]"#;
        assert_eq!(q(json, "$[0]"), vec![&b"10"[..]]);
        assert_eq!(q(json, "$[1]"), vec![&b"[20, 21]"[..]]);
        assert_eq!(q(json, "$[2].x"), vec![&b"30"[..]]);
        assert_eq!(q(json, "$[1:3]").len(), 2);
        assert_eq!(q(json, "$[*]").len(), 4);
    }

    #[test]
    fn paper_query_shape() {
        let json = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]}, {"cp": [{"id": 4}]}]}"#;
        assert_eq!(q(json, "$.pd[*].cp[1:3].id"), vec![&b"2"[..], b"3"]);
    }

    #[test]
    fn name_matching_is_exact() {
        let json = br#"{"ab": 1, "b": 2, "xb": 3}"#;
        assert_eq!(q(json, "$.b"), vec![b"2"]);
    }

    #[test]
    fn name_with_preceding_escape_rejected() {
        // The name string is `x\"b` — matching `b` against its tail must
        // fail because the would-be opening quote is escaped.
        let json = br#"{"x\"b": 1, "b": 2}"#;
        assert_eq!(q(json, "$.b"), vec![b"2"]);
    }

    #[test]
    fn strings_with_metachars_do_not_split_values() {
        let json = br#"{"a": "x,y", "b": 2}"#;
        assert_eq!(q(json, "$.a"), vec![&br#""x,y""#[..]]);
        assert_eq!(q(json, "$.b"), vec![b"2"]);
    }

    #[test]
    fn empty_array_has_no_elements() {
        assert!(q(br#"[ ]"#, "$[*]").is_empty());
        assert!(q(br#"[]"#, "$[0]").is_empty());
    }

    #[test]
    fn root_match() {
        let json = br#" {"a": 1} "#;
        assert_eq!(q(json, "$"), vec![&br#"{"a": 1}"#[..]]);
    }

    #[test]
    fn kind_mismatch_returns_nothing() {
        let json = br#"{"a": [1, 2]}"#;
        assert!(q(json, "$.a.b").is_empty());
        assert!(q(json, "$[*]").is_empty());
        assert!(q(json, "$.a[0].z").is_empty());
    }

    #[test]
    fn descendant_matches_every_depth_in_pre_order() {
        let json = br#"{"a": {"a": 1}, "b": [{"a": 2}], "c": 3}"#;
        assert_eq!(q(json, "$..a"), vec![&br#"{"a": 1}"#[..], b"1", b"2"]);
        assert_eq!(q(json, "$..b[0].a"), vec![&b"2"[..]]);
    }

    #[test]
    fn descendant_index_applies_in_every_array() {
        let json = br#"{"x": [[9, 8], [7]], "y": [6]}"#;
        assert_eq!(q(json, "$..[0]"), vec![&b"[9, 8]"[..], b"9", b"7", b"6"]);
    }

    #[test]
    fn descendant_deeper_than_path_len() {
        // A 1-step descendant query must still reach depth 4: the index is
        // sized by the record's nesting, not the query's length.
        let json = br#"{"o": {"o": {"o": {"t": 5}}}}"#;
        assert_eq!(q(json, "$..t"), vec![&b"5"[..]]);
    }

    #[test]
    fn unions_select_listed_members() {
        let json = br#"{"a": 1, "b": 2, "c": 3}"#;
        assert_eq!(q(json, "$['a','c']"), vec![&b"1"[..], b"3"]);
        let arr = br#"[10, 20, 30, 40]"#;
        assert_eq!(q(arr, "$[0,2]"), vec![&b"10"[..], b"30"]);
    }

    #[test]
    fn filters_probe_element_bytes() {
        let json = br#"[{"x": 1}, {"x": 5}, {"y": 9}]"#;
        assert_eq!(q(json, "$[?(@.x > 2)]"), vec![&br#"{"x": 5}"#[..]]);
        let prims = br#"[1, "two", 3]"#;
        assert_eq!(q(prims, "$[?(@ == 3)]"), vec![&b"3"[..]]);
    }
}
