//! Index-guided query evaluation: jump colon-to-colon across object
//! attributes and comma-to-comma across array elements (paper Figure 3-(b)).

use jsonpath::Step;

use crate::build::{trim, LeveledIndex};

/// Collects matches of `steps` within the value spanning `span` at nesting
/// `level` (level = number of containers entered so far).
pub(crate) fn collect<'a>(
    index: &LeveledIndex<'a>,
    span: (usize, usize),
    level: usize,
    steps: &[Step],
    out: &mut Vec<&'a [u8]>,
) {
    let input = index.input();
    let (s, e) = span;
    let Some((step, rest)) = steps.split_first() else {
        out.push(&input[s..e]);
        return;
    };
    match (input[s], step) {
        (b'{', Step::Child(_) | Step::AnyChild) => {
            // Attribute k's value runs from its colon to the next level-
            // `level` comma (or the closing brace).
            let inner_end = e - 1; // position of '}'
            for colon in index.colons_in(level, s + 1, inner_end) {
                let value_end = index
                    .next_comma(level, colon + 1, inner_end)
                    .unwrap_or(inner_end);
                let matches = match step {
                    Step::Child(name) => attr_name_matches(input, colon, name),
                    _ => true,
                };
                if matches {
                    let vspan = trim(input, colon + 1, value_end);
                    if vspan.0 < vspan.1 {
                        collect(index, vspan, level + 1, rest, out);
                    }
                }
            }
        }
        (b'[', s2) if s2.is_array_step() => {
            let inner_end = e - 1; // position of ']'
            let mut elem_start = s + 1;
            let mut counter = 0usize;
            loop {
                let elem_end = index
                    .next_comma(level, elem_start, inner_end)
                    .unwrap_or(inner_end);
                let espan = trim(input, elem_start, elem_end);
                if espan.0 < espan.1 {
                    if step.selects_index(counter) {
                        collect(index, espan, level + 1, rest, out);
                    }
                    counter += 1;
                }
                if elem_end == inner_end {
                    break;
                }
                elem_start = elem_end + 1;
            }
        }
        _ => {} // primitive or kind mismatch: nothing can match deeper
    }
}

/// Checks whether the attribute name ending just before `colon` equals
/// `name`: the raw name span is recovered by scanning backwards from the
/// colon (no tokenization of other attributes — the index already localized
/// the candidate), then compared escape-aware like every other engine.
fn attr_name_matches(input: &[u8], colon: usize, name: &str) -> bool {
    let mut i = colon;
    while i > 0 && matches!(input[i - 1], b' ' | b'\t' | b'\n' | b'\r') {
        i -= 1;
    }
    if i == 0 || input[i - 1] != b'"' {
        return false;
    }
    let close = i - 1;
    // Scan back to the opening quote: a quote opens the name iff it is
    // preceded by an even number of backslashes.
    let mut j = close;
    while j > 0 {
        j -= 1;
        if input[j] == b'"' {
            let mut backslashes = 0;
            while backslashes < j && input[j - 1 - backslashes] == b'\\' {
                backslashes += 1;
            }
            if backslashes % 2 == 0 {
                return jsonpath::names::matches(&input[j + 1..close], name);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::LeveledIndex;
    use jsonpath::Path;

    fn q<'a>(json: &'a [u8], query: &str) -> Vec<&'a [u8]> {
        let path: Path = query.parse().unwrap();
        LeveledIndex::build(json, path.len().max(1)).query(&path)
    }

    #[test]
    fn child_chain() {
        let json = br#"{"a": {"b": 7}, "c": {"b": 8}}"#;
        assert_eq!(q(json, "$.a.b"), vec![b"7"]);
        assert_eq!(q(json, "$.*.b"), vec![&b"7"[..], b"8"]);
    }

    #[test]
    fn array_partitioning() {
        let json = br#"[10, [20, 21], {"x": 30}, 40]"#;
        assert_eq!(q(json, "$[0]"), vec![&b"10"[..]]);
        assert_eq!(q(json, "$[1]"), vec![&b"[20, 21]"[..]]);
        assert_eq!(q(json, "$[2].x"), vec![&b"30"[..]]);
        assert_eq!(q(json, "$[1:3]").len(), 2);
        assert_eq!(q(json, "$[*]").len(), 4);
    }

    #[test]
    fn paper_query_shape() {
        let json = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]}, {"cp": [{"id": 4}]}]}"#;
        assert_eq!(q(json, "$.pd[*].cp[1:3].id"), vec![&b"2"[..], b"3"]);
    }

    #[test]
    fn name_matching_is_exact() {
        let json = br#"{"ab": 1, "b": 2, "xb": 3}"#;
        assert_eq!(q(json, "$.b"), vec![b"2"]);
    }

    #[test]
    fn name_with_preceding_escape_rejected() {
        // The name string is `x\"b` — matching `b` against its tail must
        // fail because the would-be opening quote is escaped.
        let json = br#"{"x\"b": 1, "b": 2}"#;
        assert_eq!(q(json, "$.b"), vec![b"2"]);
    }

    #[test]
    fn strings_with_metachars_do_not_split_values() {
        let json = br#"{"a": "x,y", "b": 2}"#;
        assert_eq!(q(json, "$.a"), vec![&br#""x,y""#[..]]);
        assert_eq!(q(json, "$.b"), vec![b"2"]);
    }

    #[test]
    fn empty_array_has_no_elements() {
        assert!(q(br#"[ ]"#, "$[*]").is_empty());
        assert!(q(br#"[]"#, "$[0]").is_empty());
    }

    #[test]
    fn root_match() {
        let json = br#" {"a": 1} "#;
        assert_eq!(q(json, "$"), vec![&br#"{"a": 1}"#[..]]);
    }

    #[test]
    fn kind_mismatch_returns_nothing() {
        let json = br#"{"a": [1, 2]}"#;
        assert!(q(json, "$.a.b").is_empty());
        assert!(q(json, "$[*]").is_empty());
        assert!(q(json, "$.a[0].z").is_empty());
    }
}
