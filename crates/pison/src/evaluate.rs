//! [`jsonski::Evaluate`] adapter: a query-bound leveled-index engine.

use std::ops::ControlFlow;

use jsonpath::{ParsePathError, Path};

use crate::validate::validate;
use crate::LeveledIndex;

/// A JSONPath query evaluated by leveled-bitmap index construction plus
/// index-guided traversal (the paper's "Pison" baseline), usable wherever
/// [`jsonski::Evaluate`] is accepted — e.g. in a [`jsonski::Pipeline`].
///
/// Because the raw leveled index assumes well-formed input, each
/// [`evaluate`](jsonski::Evaluate::evaluate) call first runs an explicit
/// structural [validation pass](crate::validate) so malformed records are
/// *reported* instead of yielding garbage — a documented concession for the
/// unified API (the benchmarks keep using the unvalidated
/// [`LeveledIndex`] path).
#[derive(Clone, Debug)]
pub struct PisonQuery {
    path: Path,
    validation: jsonski::ValidationMode,
}

impl PisonQuery {
    /// Binds the engine to an already-parsed path.
    pub fn new(path: Path) -> Self {
        PisonQuery {
            path,
            validation: jsonski::ValidationMode::Permissive,
        }
    }

    /// Compiles a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed expressions.
    pub fn compile(query: &str) -> Result<Self, ParsePathError> {
        Ok(PisonQuery::new(query.parse()?))
    }

    /// Sets the input trust level (builder-style). Strict runs the shared
    /// [`jsonski::validate_record`] pre-pass (in addition to the structural
    /// [validation pass](crate::validate) this engine always performs) so
    /// this engine rejects exactly the inputs — at the same byte offsets —
    /// that the streaming engine rejects mid-skip.
    pub fn with_validation(mut self, mode: jsonski::ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// The compiled path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn strict_reject(&self, record: &[u8]) -> Option<jsonski::RecordOutcome> {
        if self.validation != jsonski::ValidationMode::Strict {
            return None;
        }
        jsonski::validate_record(record).map(|(offset, reason)| {
            jsonski::RecordOutcome::Failed(jsonski::EngineError::Invalid { offset, reason })
        })
    }
}

impl jsonski::Evaluate for PisonQuery {
    fn name(&self) -> &'static str {
        "Pison"
    }

    fn evaluate(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
    ) -> jsonski::RecordOutcome {
        if let Some(failed) = self.strict_reject(record) {
            return failed;
        }
        if let Err(e) = validate(record) {
            return jsonski::RecordOutcome::Failed(jsonski::EngineError::Engine {
                engine: "Pison",
                message: e.to_string(),
            });
        }
        let index = LeveledIndex::build(record, LeveledIndex::levels_for(record, &self.path));
        let mut matches = 0usize;
        for m in index.query(&self.path) {
            matches += 1;
            if let ControlFlow::Break(()) =
                sink.on_match(jsonski::Match::from_slice(record_idx, record, m))
            {
                return jsonski::RecordOutcome::Stopped { matches };
            }
        }
        jsonski::RecordOutcome::Complete { matches }
    }

    /// Splits the two-stage cost for the metrics layer: validation plus
    /// leveled-index construction is reported as build time, the
    /// index-guided query loop as traversal.
    fn evaluate_metered(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
        metrics: &jsonski::Metrics,
    ) -> jsonski::RecordOutcome {
        if !metrics.is_enabled() {
            return self.evaluate(record, record_idx, sink);
        }
        if let Some(failed) = self.strict_reject(record) {
            metrics.record_outcome(record.len(), &failed);
            return failed;
        }
        let sw = metrics.stopwatch();
        if let Err(e) = validate(record) {
            let ns = sw.elapsed_ns();
            metrics.add_build_ns(ns);
            metrics.add_eval_ns(ns);
            let outcome = jsonski::RecordOutcome::Failed(jsonski::EngineError::Engine {
                engine: "Pison",
                message: e.to_string(),
            });
            metrics.record_outcome(record.len(), &outcome);
            return outcome;
        }
        let index = LeveledIndex::build(record, LeveledIndex::levels_for(record, &self.path));
        let build_ns = sw.elapsed_ns();
        let mut matches = 0usize;
        let mut stopped = false;
        for m in index.query(&self.path) {
            matches += 1;
            if sink
                .on_match(jsonski::Match::from_slice(record_idx, record, m))
                .is_break()
            {
                stopped = true;
                break;
            }
        }
        let total_ns = sw.elapsed_ns();
        metrics.add_build_ns(build_ns);
        metrics.add_traverse_ns(total_ns.saturating_sub(build_ns));
        metrics.add_eval_ns(total_ns);
        let outcome = if stopped {
            jsonski::RecordOutcome::Stopped { matches }
        } else {
            jsonski::RecordOutcome::Complete { matches }
        };
        metrics.record_outcome(record.len(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonski::Evaluate;

    #[test]
    fn counts_and_failures() {
        let q = PisonQuery::compile("$.a").unwrap();
        assert_eq!(q.name(), "Pison");
        assert_eq!(q.count(br#"{"a": 1}"#).unwrap(), 1);
        assert_eq!(q.count(b"  ").unwrap(), 0);
        assert!(q.count(br#"{"a" 1}"#).is_err());
        assert_eq!(q.path().len(), 1);
    }

    #[test]
    fn early_exit_reports_stopped() {
        let q = PisonQuery::compile("$[*]").unwrap();
        let mut sink =
            jsonski::FnSink::new(|_m: jsonski::Match<'_>| std::ops::ControlFlow::Break(()));
        match q.evaluate(b"[1, 2, 3]", 0, &mut sink) {
            jsonski::RecordOutcome::Stopped { matches } => assert_eq!(matches, 1),
            other => panic!("expected Stopped, got {other:?}"),
        }
    }
}
