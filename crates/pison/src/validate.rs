//! Structural validation for [`PisonQuery`](crate::PisonQuery).
//!
//! The original Pison assumes well-formed input: the leveled bitmap index
//! records colon/comma positions without checking the grammar, so a
//! malformed record silently yields garbage (or zero) matches. To take part
//! in a mixed-quality record stream — where the unified evaluation API
//! requires engines to *report* malformed records — this module adds an
//! explicit detailed validation pass, run before the index is built. This
//! is a documented concession: the paper's Pison numbers do not include
//! such a pass, and the repository's benchmarks keep using the raw
//! [`LeveledIndex`](crate::LeveledIndex) path.

use std::fmt;

/// A structural syntax error found during validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    message: &'static str,
    /// Byte offset of the error.
    pub pos: usize,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

impl std::error::Error for ValidateError {}

/// Maximum nesting depth (recursion guard, matching the other engines).
const MAX_DEPTH: usize = 1024;

/// Checks that `input` is one structurally valid JSON value (or blank).
///
/// # Errors
///
/// [`ValidateError`] at the first grammar violation.
pub fn validate(input: &[u8]) -> Result<(), ValidateError> {
    let mut v = Validator { input, pos: 0 };
    v.skip_ws();
    if v.pos == input.len() {
        return Ok(()); // blank record: no value, no matches
    }
    v.value(0)?;
    v.skip_ws();
    if v.pos != input.len() {
        return Err(v.err("trailing bytes after value"));
    }
    Ok(())
}

struct Validator<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Validator<'_> {
    fn err(&self, message: &'static str) -> ValidateError {
        ValidateError {
            message,
            pos: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.input.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn value(&mut self, depth: usize) -> Result<(), ValidateError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.pos += 1;
                while matches!(
                    self.peek(),
                    Some(c) if c.is_ascii_digit()
                        || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                ) {
                    self.pos += 1;
                }
                Ok(())
            }
            _ => Err(self.err("expected value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), ValidateError> {
        self.pos += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), ValidateError> {
        self.pos += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), ValidateError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 2;
                    if self.pos > self.input.len() {
                        return Err(self.err("unterminated escape"));
                    }
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn literal(&mut self, word: &'static [u8]) -> Result<(), ValidateError> {
        if self.input.len() >= self.pos + word.len()
            && &self.input[self.pos..self.pos + word.len()] == word
        {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_records() {
        for ok in [
            &br#"{"a": [1, 2, {"b": "x,y"}], "c": null}"#[..],
            br#"[true, false, -1.5e3, "\" \\ x"]"#,
            b"42",
            br#""just a string""#,
            b"  ",
            b"{}",
            b"[]",
        ] {
            assert!(validate(ok).is_ok(), "{:?}", String::from_utf8_lossy(ok));
        }
    }

    #[test]
    fn rejects_malformed_records() {
        for bad in [
            &br#"{"a" 1}"#[..],
            br#"{"a": 1,}"#,
            br#"{"a": 1"#,
            br#"[1, 2"#,
            br#"[1 2]"#,
            br#"{"a": tru}"#,
            br#""unterminated"#,
            br#"{"a": 1} garbage"#,
            br#"{1: 2}"#,
        ] {
            assert!(validate(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn depth_guard() {
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(b'[', 3000));
        v.extend(std::iter::repeat_n(b']', 3000));
        assert!(validate(&v).is_err());
    }
}
