//! Serial leveled-bitmap construction and bit-level accessors.

use jsonpath::Path;
use simdbits::{bits, classify_stream, Classifier, BLOCK};

use crate::query::collect;

/// The leveled structural index of one record.
///
/// `colons[l]` / `commas[l]` are bitmaps (one bit per input byte, LSB-first
/// within each `u64` word) of the structural `:` / `,` characters at nesting
/// depth `l + 1` (so level 0 describes the root container's own attributes
/// or elements).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeveledIndex<'a> {
    input: &'a [u8],
    colons: Vec<Vec<u64>>,
    commas: Vec<Vec<u64>>,
    levels: usize,
}

impl<'a> LeveledIndex<'a> {
    /// Builds the index serially, recording `levels` nesting levels
    /// (a query of `path.len()` steps needs `path.len()` levels).
    pub fn build(input: &'a [u8], levels: usize) -> Self {
        let words = input.len().div_ceil(BLOCK);
        let mut index = LeveledIndex {
            input,
            colons: vec![vec![0u64; words]; levels],
            commas: vec![vec![0u64; words]; levels],
            levels,
        };
        let mut cls = Classifier::new();
        let mut depth = 0i64;
        classify_stream(&mut cls, input, |w, bm| {
            let mut interesting =
                bm.lbrace | bm.rbrace | bm.lbracket | bm.rbracket | bm.colon | bm.comma;
            while interesting != 0 {
                let bit = interesting.trailing_zeros();
                let mask = 1u64 << bit;
                if mask & (bm.lbrace | bm.lbracket) != 0 {
                    depth += 1;
                } else if mask & (bm.rbrace | bm.rbracket) != 0 {
                    depth -= 1;
                } else if depth >= 1 && (depth as usize) <= levels {
                    let level = depth as usize - 1;
                    if mask & bm.colon != 0 {
                        index.colons[level][w] |= mask;
                    } else {
                        index.commas[level][w] |= mask;
                    }
                }
                interesting &= interesting - 1;
            }
        });
        index
    }

    /// Creates an index from pre-computed bitmaps (used by the parallel
    /// builder).
    pub(crate) fn from_parts(
        input: &'a [u8],
        colons: Vec<Vec<u64>>,
        commas: Vec<Vec<u64>>,
    ) -> Self {
        let levels = colons.len();
        LeveledIndex {
            input,
            colons,
            commas,
            levels,
        }
    }

    /// The source bytes.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    /// Number of indexed levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Approximate heap footprint of the index in bytes (for the memory
    /// figure).
    pub fn index_bytes(&self) -> usize {
        let words: usize = self
            .colons
            .iter()
            .chain(self.commas.iter())
            .map(|v| v.len())
            .sum();
        words * 8
    }

    /// Iterates the positions of level-`level` colons within `[from, to)`.
    pub(crate) fn colons_in(
        &self,
        level: usize,
        from: usize,
        to: usize,
    ) -> impl Iterator<Item = usize> + '_ {
        BitRange::new(&self.colons[level], from, to)
    }

    /// Iterates the positions of level-`level` commas within `[from, to)`.
    pub(crate) fn commas_in(
        &self,
        level: usize,
        from: usize,
        to: usize,
    ) -> impl Iterator<Item = usize> + '_ {
        BitRange::new(&self.commas[level], from, to)
    }

    /// First level-`level` comma at or after `from`, below `to` — exposed
    /// so external runners can partition array elements with the index.
    pub fn next_comma(&self, level: usize, from: usize, to: usize) -> Option<usize> {
        self.commas_in(level, from, to).next()
    }

    /// The number of index levels `path` needs over `input`.
    ///
    /// Descendant-free queries touch at most `path.len()` nesting levels;
    /// a `..` step can recurse arbitrarily deep, so the index must cover
    /// the record's actual maximum nesting depth (found by a cheap
    /// quote-aware byte scan).
    pub fn levels_for(input: &[u8], path: &Path) -> usize {
        let levels = if path.has_descendant() {
            max_depth(input)
        } else {
            path.len()
        };
        levels.max(1)
    }

    /// Evaluates a query against the index, returning raw match slices in
    /// document order (pre-order: containers before their interior
    /// matches), byte-identical to the streaming engines.
    ///
    /// # Panics
    ///
    /// Panics if the index is too shallow for the query: descendant-free
    /// queries need `path.len()` levels, queries with `..` need the
    /// record's full nesting depth. Size with [`LeveledIndex::levels_for`].
    pub fn query(&self, path: &Path) -> Vec<&'a [u8]> {
        let needed = Self::levels_for(self.input, path);
        assert!(
            needed <= self.levels,
            "index has {} levels but the query needs {}",
            self.levels,
            needed
        );
        let mut out = Vec::new();
        let span = trim(self.input, 0, self.input.len());
        if span.0 < span.1 {
            collect(self, span, 0, path, path.root_state(), &mut out);
        }
        out
    }

    /// Number of matches for `path`.
    ///
    /// # Panics
    ///
    /// Panics if the index is shallower than the query (see
    /// [`LeveledIndex::query`]).
    pub fn count(&self, path: &Path) -> usize {
        self.query(path).len()
    }
}

/// Iterator over set-bit positions of a word-bitmap within `[from, to)`.
struct BitRange<'b> {
    words: &'b [u64],
    word: usize,
    current: u64,
    to: usize,
}

impl<'b> BitRange<'b> {
    fn new(words: &'b [u64], from: usize, to: usize) -> Self {
        let word = from / BLOCK;
        let current = if word < words.len() {
            words[word] & !bits::mask_below((from % BLOCK) as u32)
        } else {
            0
        };
        BitRange {
            words,
            word,
            current,
            to,
        }
    }
}

impl Iterator for BitRange<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let pos = self.word * BLOCK + self.current.trailing_zeros() as usize;
                if pos >= self.to {
                    return None;
                }
                self.current &= self.current - 1;
                return Some(pos);
            }
            self.word += 1;
            if self.word >= self.words.len() || self.word * BLOCK >= self.to {
                return None;
            }
            self.current = self.words[self.word];
        }
    }
}

/// Maximum container nesting depth of `input`, by a quote-aware scalar
/// scan (strings are skipped so braces inside them don't count).
pub(crate) fn max_depth(input: &[u8]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    let mut in_string = false;
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        if in_string {
            match b {
                b'\\' => i += 1, // skip the escaped byte
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => {
                    depth += 1;
                    max = max.max(depth);
                }
                b'}' | b']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        i += 1;
    }
    max
}

/// Trims JSON whitespace from both ends of `[from, to)`.
pub(crate) fn trim(input: &[u8], mut from: usize, mut to: usize) -> (usize, usize) {
    while from < to && matches!(input[from], b' ' | b'\t' | b'\n' | b'\r') {
        from += 1;
    }
    while to > from && matches!(input[to - 1], b' ' | b'\t' | b'\n' | b'\r') {
        to -= 1;
    }
    (from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_assignment_matches_nesting() {
        let json = br#"{"a": {"b": 1, "c": [2, 3]}, "d": 4}"#;
        let idx = LeveledIndex::build(json, 3);
        // Level 0: colons after "a" (4) and "d" (32); comma at 27.
        let c0: Vec<usize> = idx.colons_in(0, 0, json.len()).collect();
        assert_eq!(c0, vec![4, 32]);
        let m0: Vec<usize> = idx.commas_in(0, 0, json.len()).collect();
        assert_eq!(m0, vec![27]);
        // Level 1: colons after "b" and "c"; comma between them.
        let c1: Vec<usize> = idx.colons_in(1, 0, json.len()).collect();
        assert_eq!(c1.len(), 2);
        // Level 2: the comma inside [2, 3].
        let m2: Vec<usize> = idx.commas_in(2, 0, json.len()).collect();
        assert_eq!(m2.len(), 1);
    }

    #[test]
    fn strings_do_not_pollute_levels() {
        let json = br#"{"a": ":,{}[]", "b": 1}"#;
        let idx = LeveledIndex::build(json, 1);
        let colons: Vec<usize> = idx.colons_in(0, 0, json.len()).collect();
        assert_eq!(colons.len(), 2);
        let commas: Vec<usize> = idx.commas_in(0, 0, json.len()).collect();
        assert_eq!(commas.len(), 1);
    }

    #[test]
    fn deeper_levels_than_requested_are_dropped() {
        let json = br#"{"a": {"b": {"c": 1}}}"#;
        let idx = LeveledIndex::build(json, 1);
        assert_eq!(idx.levels(), 1);
        assert_eq!(idx.colons_in(0, 0, json.len()).count(), 1);
    }

    #[test]
    fn bit_range_respects_bounds() {
        let json = br#"[1,2,3,4,5]"#;
        let idx = LeveledIndex::build(json, 1);
        let all: Vec<usize> = idx.commas_in(0, 0, json.len()).collect();
        assert_eq!(all, vec![2, 4, 6, 8]);
        let mid: Vec<usize> = idx.commas_in(0, 3, 7).collect();
        assert_eq!(mid, vec![4, 6]);
        assert_eq!(idx.next_comma(0, 5, json.len()), Some(6));
        assert_eq!(idx.next_comma(0, 9, json.len()), None);
    }

    #[test]
    fn index_bytes_scales_with_levels() {
        let json = vec![b' '; 1000];
        let a = LeveledIndex::build(&json, 1).index_bytes();
        let b = LeveledIndex::build(&json, 4).index_bytes();
        assert_eq!(b, a * 4);
    }

    #[test]
    fn spanning_words() {
        let mut json = b"[".to_vec();
        for i in 0..100 {
            json.extend_from_slice(format!("{i},").as_bytes());
        }
        json.pop();
        json.push(b']');
        let idx = LeveledIndex::build(&json, 1);
        assert_eq!(idx.commas_in(0, 0, json.len()).count(), 99);
    }
}
