//! Speculative chunk-parallel index construction (Pison's contribution).
//!
//! The input is split into word-aligned chunks, one per thread. Each chunk
//! is processed under the *speculation* that it starts outside any string
//! literal with no pending escape, and records its structural colons/commas
//! with nesting depths **relative** to the chunk start. A sequential
//! validation pass then (a) re-executes any chunk whose speculated string
//! state disagrees with its predecessor's actual end state, and (b) rebases
//! relative depths with a prefix sum of per-chunk depth deltas, before the
//! per-chunk results are merged into the global leveled bitmaps.

use simdbits::{best_kernel, Blocks, Kernel, StringState, BLOCK};

use crate::build::LeveledIndex;

/// One chunk's speculative processing result.
struct ChunkResult {
    /// `(byte position, depth relative to chunk start)` of each colon.
    colons: Vec<(u32, i32)>,
    /// Same for commas.
    commas: Vec<(u32, i32)>,
    /// Net `openers - closers` across the chunk.
    depth_delta: i64,
    /// String state the chunk *assumed* at its start.
    start_state: StringState,
    /// String state at the chunk's end (given `start_state`).
    end_state: StringState,
}

fn process_chunk(
    input: &[u8],
    chunk_start: usize,
    chunk: &[u8],
    start_state: StringState,
    kernel: Kernel,
) -> ChunkResult {
    let _ = input;
    let mut st = start_state;
    let mut depth = 0i64;
    let mut colons = Vec::new();
    let mut commas = Vec::new();
    let mut handle = |w: usize, raw: simdbits::RawBitmaps| {
        let (mask, _real_quotes) = st.step(raw.quote, raw.backslash);
        let keep = !mask;
        let lbrace = raw.lbrace & keep;
        let rbrace = raw.rbrace & keep;
        let lbracket = raw.lbracket & keep;
        let rbracket = raw.rbracket & keep;
        let colon = raw.colon & keep;
        let comma = raw.comma & keep;
        let mut interesting = lbrace | rbrace | lbracket | rbracket | colon | comma;
        let base = (chunk_start + w * BLOCK) as u32;
        while interesting != 0 {
            let bit = interesting.trailing_zeros();
            let m = 1u64 << bit;
            if m & (lbrace | lbracket) != 0 {
                depth += 1;
            } else if m & (rbrace | rbracket) != 0 {
                depth -= 1;
            } else if m & colon != 0 {
                colons.push((base + bit, depth as i32));
            } else {
                commas.push((base + bit, depth as i32));
            }
            interesting &= interesting - 1;
        }
    };
    let mut blocks = Blocks::new(chunk);
    let mut w = 0usize;
    for block in blocks.by_ref() {
        handle(w, kernel.classify(block));
        w += 1;
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        let mut block = [0u8; BLOCK];
        block[..tail.len()].copy_from_slice(tail);
        handle(w, kernel.classify(&block));
    }
    // (`handle`'s mutable borrows of st/colons/commas end here.)
    ChunkResult {
        colons,
        commas,
        depth_delta: depth,
        start_state,
        end_state: st,
    }
}

/// Builds a [`LeveledIndex`] with `threads` speculative workers.
///
/// Functionally identical to [`LeveledIndex::build`]; the unit tests assert
/// bit-for-bit equality on adversarial inputs (strings and escapes crossing
/// chunk boundaries force mis-speculation and re-execution).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn build_parallel<'a>(input: &'a [u8], levels: usize, threads: usize) -> LeveledIndex<'a> {
    assert!(threads > 0, "need at least one thread");
    let kernel = best_kernel();
    let words = input.len().div_ceil(BLOCK);
    // Word-aligned chunk boundaries, one chunk per thread.
    let words_per_chunk = words.div_ceil(threads).max(1);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < input.len() {
        let end = ((start / BLOCK + words_per_chunk) * BLOCK).min(input.len());
        ranges.push((start, end));
        start = end;
    }

    // Speculative parallel pass: every chunk assumes a clean start state.
    let mut results: Vec<ChunkResult> = if ranges.len() <= 1 {
        ranges
            .iter()
            .map(|&(s, e)| process_chunk(input, s, &input[s..e], StringState::new(), kernel))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(s, e)| {
                    scope.spawn(move || {
                        process_chunk(input, s, &input[s..e], StringState::new(), kernel)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    // Validation pass: re-execute mis-speculated chunks with the true state.
    let mut state = StringState::new();
    for (i, &(s, e)) in ranges.iter().enumerate() {
        if results[i].start_state != state {
            results[i] = process_chunk(input, s, &input[s..e], state, kernel);
        }
        state = results[i].end_state;
    }

    // Depth rebasing and merge.
    let mut colons = vec![vec![0u64; words]; levels];
    let mut commas = vec![vec![0u64; words]; levels];
    let mut offset = 0i64;
    for r in &results {
        for &(pos, rel) in &r.colons {
            set_leveled(&mut colons, levels, pos, offset + rel as i64);
        }
        for &(pos, rel) in &r.commas {
            set_leveled(&mut commas, levels, pos, offset + rel as i64);
        }
        offset += r.depth_delta;
    }
    LeveledIndex::from_parts(input, colons, commas)
}

fn set_leveled(maps: &mut [Vec<u64>], levels: usize, pos: u32, depth: i64) {
    if depth >= 1 && depth as usize <= levels {
        let level = depth as usize - 1;
        maps[level][pos as usize / BLOCK] |= 1 << (pos as usize % BLOCK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonpath::Path;

    fn assert_equivalent(input: &[u8], levels: usize, threads: usize) {
        let serial = LeveledIndex::build(input, levels);
        let parallel = build_parallel(input, levels, threads);
        assert_eq!(serial, parallel, "threads={threads}");
    }

    fn nested_sample(n: usize) -> Vec<u8> {
        let mut v = b"{\"items\": [".to_vec();
        for i in 0..n {
            v.extend_from_slice(
                format!(r#"{{"id": {i}, "tags": ["a", "b{{c"], "meta": {{"x": [1, 2, {i}]}}}},"#)
                    .as_bytes(),
            );
        }
        v.pop();
        v.extend_from_slice(b"]}");
        v
    }

    #[test]
    fn parallel_matches_serial_on_clean_input() {
        let json = nested_sample(50);
        for threads in [1, 2, 4, 16] {
            assert_equivalent(&json, 4, threads);
        }
    }

    #[test]
    fn misspeculation_strings_crossing_chunks() {
        // A giant string with JSON-looking garbage inside, guaranteed to
        // cross chunk boundaries and falsify the outside-string speculation.
        let mut v = b"{\"a\": \"".to_vec();
        for _ in 0..100 {
            v.extend_from_slice(br#"{"fake": [1, 2], \"esc\": }"#);
        }
        v.extend_from_slice(b"\", \"b\": {\"c\": 1}}");
        for threads in [2, 3, 8] {
            assert_equivalent(&v, 2, threads);
        }
    }

    #[test]
    fn escape_runs_crossing_chunks() {
        let mut v = b"{\"k\": \"".to_vec();
        // Lots of backslashes so some chunk boundary lands inside a run.
        for _ in 0..40 {
            v.extend_from_slice(br#"xx\\\\\\\"yy"#);
        }
        v.extend_from_slice(b"\", \"z\": [1, 2]}");
        for threads in [2, 5, 16] {
            assert_equivalent(&v, 1, threads);
        }
    }

    #[test]
    fn query_results_agree_with_serial() {
        let json = nested_sample(200);
        let path: Path = "$.items[*].meta.x[2]".parse().unwrap();
        let serial = LeveledIndex::build(&json, path.len());
        let parallel = build_parallel(&json, path.len(), 8);
        assert_eq!(serial.query(&path), parallel.query(&path));
        assert_eq!(serial.count(&path), 200);
    }

    #[test]
    fn single_thread_and_tiny_inputs() {
        assert_equivalent(b"{}", 1, 4);
        assert_equivalent(b"", 1, 4);
        assert_equivalent(br#"{"a": 1}"#, 1, 1);
    }
}
