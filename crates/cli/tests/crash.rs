//! Crash-and-resume torture tests for the `--checkpoint` / `--resume`
//! path: the binary is repeatedly SIGKILLed mid-run (a real crash, no
//! graceful drain) and restarted with `--resume`; the concatenation of
//! each segment's durable output — truncated to the checkpoint's
//! `output_bytes`, exactly as a resume harness would — must be
//! byte-identical to an uninterrupted run.

#![cfg(unix)]

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use jsonski::Checkpoint;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_jsonski")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jsonski-crash-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A stream of `records` one-line objects (some malformed when `dirty`),
/// padded so a run takes long enough to be killed mid-flight.
fn make_input(path: &Path, records: usize, dirty: bool) {
    let mut input = Vec::new();
    for i in 0..records {
        if dirty && i % 97 == 42 {
            // An unclosed array: breaks the record boundary scan, so the
            // stream must resynchronize at the next newline.
            input.extend_from_slice(format!("{{\"id\": [{i}, {i}\n").as_bytes());
        } else {
            input.extend_from_slice(
                format!("{{\"id\": {i}, \"pad\": [{i}, {i}, {i}, \"xxxxxxxxxxxxxxxx\"]}}\n")
                    .as_bytes(),
            );
        }
    }
    std::fs::write(path, input).unwrap();
}

fn reference_output(input: &Path, skip_malformed: bool) -> Vec<u8> {
    let mut args = vec!["$.id".to_string(), input.display().to_string()];
    if skip_malformed {
        args.push("--skip-malformed".to_string());
    }
    let out = Command::new(bin()).args(&args).output().unwrap();
    let code = out.status.code();
    assert!(
        code == Some(0) || code == Some(3),
        "reference run failed: {code:?}"
    );
    out.stdout
}

/// Runs one checkpointed segment, killing the process with SIGKILL shortly
/// after the checkpoint file changes. Returns the segment's raw stdout and
/// whether the process finished on its own before the kill landed.
fn run_segment(
    input: &Path,
    ck_path: &Path,
    resume: bool,
    jobs: usize,
    skip_malformed: bool,
    kill: bool,
) -> (Vec<u8>, bool) {
    let jobs = jobs.to_string();
    let mut args = vec![
        "$.id",
        input.to_str().unwrap(),
        "--checkpoint",
        ck_path.to_str().unwrap(),
        "--checkpoint-every",
        "64",
        "-j",
        &jobs,
    ];
    if skip_malformed {
        args.push("--skip-malformed");
    }
    if resume {
        args.push("--resume");
    }
    let before = std::fs::read(ck_path).ok();
    let mut child = Command::new(bin())
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut finished = false;
    if kill {
        // Wait for the checkpoint file to advance past its pre-spawn
        // contents, then SIGKILL — the harshest possible interruption.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if child.try_wait().unwrap().is_some() {
                finished = true;
                break;
            }
            let now = std::fs::read(ck_path).ok();
            if now.is_some() && now != before {
                let _ = Command::new("kill")
                    .args(["-KILL", &child.id().to_string()])
                    .status();
                break;
            }
            assert!(Instant::now() < deadline, "checkpoint never advanced");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Drain stdout before waiting, then reap.
    let mut stdout = Vec::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_end(&mut stdout)
        .unwrap();
    let status = child.wait().unwrap();
    if !kill {
        let code = status.code();
        assert!(
            code == Some(0) || code == Some(3),
            "final segment failed: {code:?}"
        );
        finished = true;
    } else if status.code().is_some() {
        finished = true;
    }
    (stdout, finished)
}

/// The torture loop: kill-and-resume until the run completes, splicing
/// together each segment's durable prefix.
fn torture(tag: &str, jobs: usize, skip_malformed: bool, records: usize) {
    let dir = scratch(tag);
    let input = dir.join("input.jsonl");
    let ck_path = dir.join("run.ckpt");
    make_input(&input, records, skip_malformed);
    let reference = reference_output(&input, skip_malformed);

    let mut assembled: Vec<u8> = Vec::new();
    let mut durable = 0u64; // output_bytes as of the last accepted segment
    let mut resume = false;
    let mut kills = 0usize;
    loop {
        let kill = kills < 8;
        let (stdout, finished) = run_segment(&input, &ck_path, resume, jobs, skip_malformed, kill);
        let ck = Checkpoint::load(&ck_path).expect("checkpoint readable after segment");
        if finished && ck.complete {
            // The final segment's stdout is entirely durable (the run
            // flushed everything before exiting).
            assembled.extend_from_slice(&stdout);
            break;
        }
        // Crash harness contract: keep only the output the checkpoint
        // vouches for. The segment's own contribution is the growth of
        // `output_bytes` since the previous accepted checkpoint.
        let contributed = usize::try_from(ck.output_bytes - durable).unwrap();
        assert!(
            contributed <= stdout.len(),
            "checkpoint claims {contributed} bytes but segment wrote {}",
            stdout.len()
        );
        assembled.extend_from_slice(&stdout[..contributed]);
        durable = ck.output_bytes;
        resume = true;
        kills += 1;
    }
    assert!(
        kills > 0,
        "no segment was ever killed; grow the input so runs outlive the first checkpoint"
    );
    assert_eq!(
        assembled, reference,
        "resumed output diverged (jobs={jobs}, skip={skip_malformed}, kills={kills})"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_resume_serial_fail_fast() {
    torture("serial-ff", 1, false, 30_000);
}

#[test]
fn kill_and_resume_parallel_fail_fast() {
    torture("par2-ff", 2, false, 30_000);
}

#[test]
fn kill_and_resume_parallel_skip_malformed() {
    torture("par8-skip", 8, true, 30_000);
}

#[test]
fn resuming_a_complete_run_is_a_no_op() {
    let dir = scratch("complete");
    let input = dir.join("input.jsonl");
    let ck_path = dir.join("run.ckpt");
    make_input(&input, 500, false);
    let (stdout, finished) = run_segment(&input, &ck_path, false, 2, false, false);
    assert!(finished);
    assert!(!stdout.is_empty());
    let ck = Checkpoint::load(&ck_path).unwrap();
    assert!(ck.complete);
    // Resume: nothing to do, exit 0, no duplicate output.
    let (stdout, _) = run_segment(&input, &ck_path, true, 2, false, false);
    assert!(stdout.is_empty(), "complete resume re-emitted output");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_different_query_or_input() {
    let dir = scratch("mismatch");
    let input = dir.join("input.jsonl");
    let ck_path = dir.join("run.ckpt");
    make_input(&input, 500, false);
    let (_, finished) = run_segment(&input, &ck_path, false, 1, false, false);
    assert!(finished);
    // Different query → the config digest differs → usage error (exit 1).
    let out = Command::new(bin())
        .args([
            "$.other",
            input.to_str().unwrap(),
            "--checkpoint",
            ck_path.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Different input bytes → the fingerprint differs → usage error.
    make_input(&input, 501, false);
    let out = Command::new(bin())
        .args([
            "$.id",
            input.to_str().unwrap(),
            "--checkpoint",
            ck_path.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}
