//! End-to-end tests driving the actual `jsonski` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_jsonski")
}

fn run_with_stdin(args: &[&str], stdin: &[u8]) -> (String, String, Option<i32>) {
    let mut child = Command::new(bin())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // The child may exit before reading (e.g. on a bad query), closing the
    // pipe: ignore the resulting EPIPE instead of failing the test.
    let _ = child.stdin.as_mut().unwrap().write_all(stdin);
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn stdin_single_query() {
    let (stdout, _, code) = run_with_stdin(&["$.a"], b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n");
    assert_eq!(stdout, "1\n2\n");
    assert_eq!(code, Some(0));
}

#[test]
fn file_input_and_count() {
    let dir = std::env::temp_dir().join(format!("jsonski-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.json");
    std::fs::write(&path, b"{\"pd\": [{\"id\": 1}, {\"id\": 2}]}").unwrap();
    let (stdout, _, code) = run_with_stdin(&["-c", "$.pd[*].id", path.to_str().unwrap()], b"");
    assert_eq!(stdout, "2\t$.pd[*].id\n");
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_match_still_exits_zero() {
    // Finding nothing is a successful run; exit codes are reserved for the
    // failure taxonomy (1 usage/IO, 2 fatal, 3 skips, 130 cancelled).
    let (_, _, code) = run_with_stdin(&["$.zzz"], b"{\"a\": 1}\n");
    assert_eq!(code, Some(0));
}

#[test]
fn bad_query_exits_1_with_message() {
    let (_, stderr, code) = run_with_stdin(&["$.a["], b"{}");
    assert_eq!(code, Some(1));
    assert!(stderr.contains("unclosed"), "{stderr}");
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let (stdout, _, code) = run_with_stdin(&["--help"], b"");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage: jsonski"));
    assert!(stdout.contains("exit codes"), "{stdout}");
}

#[test]
fn missing_file_exits_1() {
    let (_, stderr, code) = run_with_stdin(&["$.a", "/definitely/not/here.json"], b"");
    assert_eq!(code, Some(1));
    assert!(stderr.contains("/definitely/not/here.json"), "{stderr}");
}

#[test]
fn fatal_record_exits_2_under_fail_fast() {
    let (_, stderr, code) = run_with_stdin(&["$.a"], b"{\"a\": 1}\n{\"a\": [1,\n{\"a\": 2}\n");
    assert_eq!(code, Some(2), "{stderr}");
}

#[test]
fn skipped_records_exit_3() {
    let (stdout, stderr, code) = run_with_stdin(
        &["--skip-malformed", "$.a"],
        b"{\"a\": 1}\n{\"a\": [1,\n{\"a\": 2}\n",
    );
    assert_eq!(code, Some(3), "{stderr}");
    // The broken record is skipped, the ones around it still match.
    assert_eq!(stdout, "1\n2\n");
    assert!(stderr.contains("skipped"), "{stderr}");
}

#[test]
#[cfg(unix)]
fn sigint_drains_and_exits_130() {
    use std::time::Duration;
    let mut child = Command::new(bin())
        .args(["$.a"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(b"{\"a\": 1}\n{\"a\": 2}\n").unwrap();
    stdin.flush().unwrap();
    // Give the child time to finish exec and install its handler — a
    // SIGINT that lands before `signals::install` runs kills it raw.
    std::thread::sleep(Duration::from_millis(300));
    // First SIGINT: the self-pipe watcher trips the cancellation token.
    let pid = child.id().to_string();
    let killed = Command::new("kill").args(["-INT", &pid]).status().unwrap();
    assert!(killed.success());
    // glibc installs the handler with SA_RESTART, so a blocked stdin read
    // does not EINTR: give the watcher a moment to cancel, then close
    // stdin so the reader reaches the next record boundary and drains.
    std::thread::sleep(Duration::from_millis(300));
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(130));
    // Everything delivered before the cancel still reached stdout.
    assert_eq!(String::from_utf8_lossy(&out.stdout), "1\n2\n");
}

#[test]
fn stats_flag_reports_fast_forward() {
    let (_, stderr, _) = run_with_stdin(&["-s", "$.a"], b"{\"a\": 1, \"big\": {\"x\": [1,2,3]}}");
    assert!(stderr.contains("fast-forward"), "{stderr}");
}

#[test]
fn multi_query_stdin() {
    let (stdout, _, code) = run_with_stdin(&["$.a", "$.b"], b"{\"a\": 1, \"b\": 2}\n");
    assert!(stdout.contains("0\t1"));
    assert!(stdout.contains("1\t2"));
    assert_eq!(code, Some(0));
}
