//! End-to-end tests driving the actual `jsonski` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_jsonski")
}

fn run_with_stdin(args: &[&str], stdin: &[u8]) -> (String, String, Option<i32>) {
    let mut child = Command::new(bin())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // The child may exit before reading (e.g. on a bad query), closing the
    // pipe: ignore the resulting EPIPE instead of failing the test.
    let _ = child.stdin.as_mut().unwrap().write_all(stdin);
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn stdin_single_query() {
    let (stdout, _, code) = run_with_stdin(&["$.a"], b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n");
    assert_eq!(stdout, "1\n2\n");
    assert_eq!(code, Some(0));
}

#[test]
fn file_input_and_count() {
    let dir = std::env::temp_dir().join(format!("jsonski-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.json");
    std::fs::write(&path, b"{\"pd\": [{\"id\": 1}, {\"id\": 2}]}").unwrap();
    let (stdout, _, code) = run_with_stdin(&["-c", "$.pd[*].id", path.to_str().unwrap()], b"");
    assert_eq!(stdout, "2\t$.pd[*].id\n");
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_match_exits_nonzero() {
    let (_, _, code) = run_with_stdin(&["$.zzz"], b"{\"a\": 1}\n");
    assert_eq!(code, Some(1));
}

#[test]
fn bad_query_exits_2_with_message() {
    let (_, stderr, code) = run_with_stdin(&["$..bad"], b"{}");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("descendant"));
}

#[test]
fn help_prints_usage() {
    let (_, stderr, code) = run_with_stdin(&["--help"], b"");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage: jsonski"));
}

#[test]
fn stats_flag_reports_fast_forward() {
    let (_, stderr, _) = run_with_stdin(&["-s", "$.a"], b"{\"a\": 1, \"big\": {\"x\": [1,2,3]}}");
    assert!(stderr.contains("fast-forward"), "{stderr}");
}

#[test]
fn multi_query_stdin() {
    let (stdout, _, code) = run_with_stdin(&["$.a", "$.b"], b"{\"a\": 1, \"b\": 2}\n");
    assert!(stdout.contains("0\t1"));
    assert!(stdout.contains("1\t2"));
    assert_eq!(code, Some(0));
}
