//! SIGTERM-drain smoke test against the real `jsonski serve` binary:
//! send load, signal, assert the in-flight request completes with a
//! byte-exact frame, new work is rejected, and the process exits by the
//! established exit-code contract (130 after a graceful drain).

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use jsonski::JsonSki;
use jsonski_serve::Client;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_jsonski")
}

/// Spawns `jsonski serve` on an ephemeral port and parses the bound
/// address from its stderr banner.
fn spawn_serve(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--listen", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn jsonski serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listen banner");
    let addr = line
        .trim()
        .strip_prefix("jsonski: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr, stderr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
}

fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i * 2,
                i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

#[test]
fn sigterm_while_idle_exits_130() {
    let (mut child, addr, _stderr) = spawn_serve(&[]);
    // Prove it serves before the signal.
    let mut c = Client::connect_tcp(&addr).unwrap();
    assert!(c.ping().unwrap().is_ok());
    sigterm(&child);
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(130), "graceful drain must exit 130");
}

#[test]
fn sigterm_under_load_drains_in_flight_and_exits_130() {
    let (mut child, addr, _stderr) = spawn_serve(&["--deadline-ms", "30000", "--metrics-endpoint"]);
    let body = ndjson(150_000); // ~10 MiB; `$..price` disables fast-forwarding
    let reference = serial_reference("$..price", &body);
    // Several in-flight requests, then SIGTERM mid-evaluation.
    let mut inflight = Vec::new();
    for i in 0..3 {
        let addr = addr.clone();
        let body = body.clone();
        inflight.push(std::thread::spawn(move || {
            let mut c = Client::connect_tcp(&addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            c.query(&format!("load{i}"), "t", "$..price", Some(30_000), &body)
                .unwrap()
        }));
    }
    // Wait until all three queries are past admission control before
    // signaling: admitted requests hold a tenant permit and are never
    // rejected by the drain gate, so each is guaranteed to complete.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let mut c = Client::connect_tcp(&addr).unwrap();
        let scrape = String::from_utf8(c.metrics(false).unwrap().body).unwrap();
        let admitted: u64 = scrape
            .lines()
            .find(|l| l.starts_with("serve_admitted "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if admitted >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "queries were never admitted:\n{scrape}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    sigterm(&child);
    // Every in-flight request completes with a full, byte-exact frame.
    for t in inflight {
        let resp = t.join().unwrap();
        assert_eq!(resp.code, 200, "{:?}", resp.reason);
        assert_eq!(
            resp.body, reference,
            "drained response must be byte-identical to a serial run"
        );
    }
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(130), "graceful drain must exit 130");
}

#[test]
fn draining_server_rejects_new_queries_with_503() {
    let (mut child, addr, _stderr) = spawn_serve(&["--deadline-ms", "30000"]);
    let body = ndjson(150_000);
    // Hold the server in drain with one slow in-flight request.
    let holder = {
        let addr = addr.clone();
        let body = body.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_tcp(&addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            c.query("hold", "t", "$..price", Some(30_000), &body)
                .unwrap()
        })
    };
    // A second connection opened pre-drain stays usable for probing.
    let mut probe = Client::connect_tcp(&addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(80));
    sigterm(&child);
    std::thread::sleep(Duration::from_millis(50));
    // New query on the surviving connection: typed 503, not a hang or cut.
    match probe.query("late", "t", "$.id", None, b"{\"id\": 1}\n") {
        Ok(resp) => {
            assert_eq!(resp.code, 503, "{:?}", resp.reason);
            assert_eq!(resp.reason.as_deref(), Some("server is draining"));
        }
        // The drain may finish (and close the socket) before the probe
        // lands; a clean transport error is acceptable, a hang is not.
        Err(e) => eprintln!("probe raced drain completion: {e}"),
    }
    assert!(holder.join().unwrap().is_ok());
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(130));
}

#[test]
fn serve_help_and_bad_flags_follow_exit_contract() {
    let out = Command::new(bin())
        .args(["serve", "--help"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: jsonski serve"));
    let out = Command::new(bin())
        .args(["serve", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown serve option"));
}
