//! SIGKILL torture for the persistent index cache against the real
//! `jsonski serve` binary: kill -9 the daemon at staggered points while
//! a background index build/persist is in flight, restart, and require
//! that every served response stays byte-identical to a serial run. The
//! crash-safety contract under test: at any kill point the on-disk index
//! is old-valid-or-absent — a fresh process either loads a fully valid
//! index or silently rebuilds, never serves from a torn one.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use jsonski::JsonSki;
use jsonski_serve::Client;

const QUERY: &str = "$.items[*].price";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_jsonski")
}

fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--listen", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn jsonski serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listen banner");
    let addr = line
        .trim()
        .strip_prefix("jsonski: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

fn sigkill(child: &mut Child) {
    let status = Command::new("kill")
        .args(["-KILL", &child.id().to_string()])
        .status()
        .expect("send SIGKILL");
    assert!(status.success());
    let _ = child.wait();
}

fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i * 2,
                i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

fn scrape_counter(client: &mut Client, name: &str) -> u64 {
    let scrape = String::from_utf8(client.metrics(false).unwrap().body).unwrap();
    scrape
        .lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn sigkill_during_index_persist_never_corrupts_results() {
    let dir = std::env::temp_dir().join(format!("jsonski-idx-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus_dir = dir.join("corpora");
    let index_dir = dir.join("indexes");
    std::fs::create_dir_all(&corpus_dir).unwrap();
    let body = ndjson(20_000);
    let reference = serial_reference(QUERY, &body);
    std::fs::write(corpus_dir.join("c.ndjson"), &body).unwrap();
    let flags: Vec<String> = vec![
        "--corpus-dir".into(),
        corpus_dir.display().to_string(),
        "--index-cache".into(),
        index_dir.display().to_string(),
        "--metrics-endpoint".into(),
    ];
    let flag_refs: Vec<&str> = flags.iter().map(String::as_str).collect();

    // Staggered kill points: the corpus query schedules a background
    // index build + atomic persist; killing 0..N ms later lands the
    // SIGKILL before, during, and after the write across rounds.
    for round in 0..8u64 {
        let (mut child, addr) = spawn_serve(&flag_refs);
        let mut c = Client::connect_tcp(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let resp = c.query_corpus("k", "t", QUERY, "c.ndjson", None).unwrap();
        assert_eq!(resp.code, 200, "round {round}: {:?}", resp.reason);
        assert_eq!(
            resp.body, reference,
            "round {round}: response after crash-restart diverged from serial run"
        );
        std::thread::sleep(Duration::from_millis(round * 3));
        sigkill(&mut child);
        // Whatever the kill left behind must be old-valid-or-absent: a
        // file at the final path, if present, parses and verifies in
        // full or is rejected wholesale — spot-checked by the next
        // round's byte-exact assertion above.
    }

    // Convergence: a final daemon must reach a verified index hit and
    // still answer byte-identically.
    let (mut child, addr) = spawn_serve(&flag_refs);
    let mut c = Client::connect_tcp(&addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let before = scrape_counter(&mut c, "index_hit");
        let resp = c.query_corpus("z", "t", QUERY, "c.ndjson", None).unwrap();
        assert_eq!(resp.code, 200, "{:?}", resp.reason);
        assert_eq!(
            resp.body, reference,
            "indexed response diverged after torture"
        );
        if scrape_counter(&mut c, "index_hit") > before {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "index never converged to a verified hit after SIGKILL torture"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Torn staging files may remain (the crash model allows them), but
    // the final index path itself must now hold a fully valid index.
    let path = jsonski::index::index_path_for(&index_dir, "c.ndjson");
    let digest = jsonski::index::config_digest(&jsonski::EngineConfig::default());
    jsonski::StructuralIndex::load(&path, &body, digest)
        .expect("final index path must be old-valid-or-absent, and by now: valid");
    sigkill(&mut child);
    let _ = std::fs::remove_dir_all(&dir);
}
