//! The `jsonski serve` subcommand: argument parsing and the daemon run
//! loop, bridging the CLI's signal handling and exit-code contract onto
//! [`jsonski_serve::Server`].

use std::time::Duration;

use jsonski::{EngineConfig, ErrorPolicy, Kernel, ResourceLimits, ValidationMode};
use jsonski_serve::{ServeConfig, Server};

use crate::{CliError, EXIT_CANCELLED};

/// Default TCP listen address when neither `--listen` nor `--unix` is
/// given.
pub const DEFAULT_LISTEN: &str = "127.0.0.1:9649";

/// Help text for `jsonski serve`.
pub const SERVE_USAGE: &str = "\
usage: jsonski serve [OPTIONS]

Runs a long-lived query-service daemon. Clients speak a length-prefixed
framed protocol: each frame is a 4-byte big-endian payload length, then a
JSON header line ({\"op\", \"id\", \"tenant\", \"query\", \"deadline_ms\"}),
then the raw NDJSON body to evaluate. Responses mirror the shape with an
HTTP-style code (200 ok, 408 timeout, 429 shed, 422 eval failure, 503
draining) and the match lines as the body. See DESIGN.md §12.

options:
  --listen ADDR      TCP listen address (default 127.0.0.1:9649; use port
                     0 for an ephemeral port). The bound address is
                     printed to stderr as `jsonski: listening on ADDR`.
  --unix PATH        listen on a unix-domain socket instead of TCP
  --workers N        evaluation worker threads (default 4)
  --queue N          admission watermark: maximum admitted-but-unfinished
                     requests before shedding with 429 queue_full
                     (default 64)
  --tenant-quota N   maximum in-flight requests per tenant before
                     shedding with 429 tenant_quota (default 16)
  --deadline-ms N    default per-request deadline when the client names
                     none (default 2000)
  --max-deadline-ms N
                     hard cap on client-requested deadlines (default 30000)
  --read-timeout-ms N
                     socket read timeout, one tick of the slow-loris
                     clock (default 250)
  --stall-budget N   mid-frame read timeouts tolerated before the
                     connection is closed (default 4)
  --write-timeout-ms N
                     socket write timeout, one tick of the response-write
                     stall clock (default 250)
  --write-stall-budget N
                     mid-response write timeouts tolerated before a
                     non-draining client's connection is closed
                     (default 8)
  --corpus-dir DIR   serve requests whose header names a `\"corpus\"` file
                     stored under DIR (the body is then ignored); unknown
                     names answer 404 not_found
  --index-cache DIR  persist structural indexes (record spans + bitmaps)
                     for stored corpora under DIR: repeat queries skip
                     classification entirely, and a damaged or stale index
                     file silently falls back to full classification and
                     rebuilds in the background (requires --corpus-dir)
  --index-warm       build (or load) the structural index for every stored
                     corpus at startup, before the listener accepts
                     traffic, so the first query of each corpus is already
                     fast; per-corpus progress is logged to stderr
                     (requires --corpus-dir)
  --memory-budget BYTES
                     global tracked-memory budget for resident request
                     bodies, corpora, indexes, compiled queries, and
                     response buffers. Under pressure the server degrades
                     in order: evict caches, force chunked streaming,
                     then shed with 429 memory (default 0 = unlimited,
                     usage still tracked in mem_* gauges)
  --tenant-memory-budget BYTES
                     per-tenant share of the memory budget; a tenant at
                     its cap sheds with 429 memory while others proceed
                     (default 0 = no per-tenant cap)
  --chunk-bytes N    chunk size for streamed responses — the server's
                     high-water response buffer per stream-opted request
                     (default 262144)
  --max-frame-bytes N
                     largest accepted request frame (default 16 MiB)
  --cache N          compiled-query LRU cache capacity (default 128;
                     0 disables)
  --metrics-endpoint serve `op: \"metrics\"` scrapes (text or JSON) with
                     serve counters, cache hit rates, and the engine's
                     metrics registry
  --skip-malformed   skip records in request bodies that fail to evaluate
                     (counted in the response header) instead of failing
                     the request with 422
  --strict           validate request bodies byte-for-byte (UTF-8, escape
                     grammar, balanced structure) — see `jsonski --help`
  --kernel NAME      force the bitmap classification kernel (scalar,
                     swar, sse2, avx2); JSONSKI_KERNEL overrides
  --max-record-bytes N
                     reject body records larger than N bytes
  --max-depth N      reject body records nested deeper than N containers
  -h, --help         show this help

exit codes: 0 clean shutdown; 1 usage or bind error; 130 drained after
SIGINT/SIGTERM (in-flight requests finish, new ones get 503, then the
process exits).";

/// Parsed `jsonski serve` options.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP listen address (ignored when `unix` is set).
    pub listen: String,
    /// Unix-domain socket path, when serving over one.
    pub unix: Option<String>,
    /// Assembled server configuration.
    pub config: ServeConfig,
}

/// Parses `jsonski serve` arguments (everything after the subcommand
/// word).
///
/// # Errors
///
/// [`CliError::Usage`] for unknown flags or malformed values;
/// [`CliError::Help`] for `--help`.
pub fn parse_serve_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServeOptions, CliError> {
    parse_inner(args).map_err(|e| {
        if e == "\u{1}help" {
            CliError::Help
        } else {
            CliError::Usage(e)
        }
    })
}

fn parse_inner<I: IntoIterator<Item = String>>(args: I) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        listen: DEFAULT_LISTEN.to_string(),
        unix: None,
        config: ServeConfig::default(),
    };
    let mut validation = ValidationMode::Permissive;
    let mut kernel: Option<Kernel> = None;
    let mut limits = ResourceLimits::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or(format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{name} needs a non-negative integer"))
        };
        match flag.as_str() {
            "--listen" => opts.listen = it.next().ok_or("--listen needs an address")?,
            "--unix" => opts.unix = Some(it.next().ok_or("--unix needs a path")?),
            "--workers" => opts.config.workers = num("--workers")?.max(1) as usize,
            "--queue" => opts.config.max_queue = num("--queue")?.max(1) as usize,
            "--tenant-quota" => opts.config.tenant_quota = num("--tenant-quota")?.max(1) as usize,
            "--deadline-ms" => {
                opts.config.default_deadline = Duration::from_millis(num("--deadline-ms")?)
            }
            "--max-deadline-ms" => {
                opts.config.max_deadline = Duration::from_millis(num("--max-deadline-ms")?)
            }
            "--read-timeout-ms" => {
                let ms = num("--read-timeout-ms")?.max(1);
                opts.config.read_timeout = Duration::from_millis(ms);
            }
            "--stall-budget" => opts.config.stall_budget = num("--stall-budget")? as u32,
            "--write-timeout-ms" => {
                let ms = num("--write-timeout-ms")?.max(1);
                opts.config.write_timeout = Duration::from_millis(ms);
            }
            "--write-stall-budget" => {
                opts.config.write_stall_budget = num("--write-stall-budget")? as u32
            }
            "--corpus-dir" => {
                let dir = it.next().ok_or("--corpus-dir needs a directory")?;
                opts.config.corpus_dir = Some(std::path::PathBuf::from(dir));
            }
            "--index-cache" => {
                let dir = it.next().ok_or("--index-cache needs a directory")?;
                opts.config.index_cache = Some(std::path::PathBuf::from(dir));
            }
            "--index-warm" => opts.config.index_warm = true,
            "--memory-budget" => {
                opts.config.memory_budget = num("--memory-budget")? as usize;
            }
            "--tenant-memory-budget" => {
                opts.config.tenant_memory_budget = num("--tenant-memory-budget")? as usize;
            }
            "--chunk-bytes" => opts.config.chunk_bytes = num("--chunk-bytes")?.max(16) as usize,
            "--max-frame-bytes" => {
                opts.config.max_frame_bytes = num("--max-frame-bytes")?.max(64) as usize
            }
            "--cache" => opts.config.cache_capacity = num("--cache")? as usize,
            "--metrics-endpoint" => opts.config.metrics_endpoint = true,
            "--skip-malformed" => opts.config.error_policy = ErrorPolicy::SkipMalformed,
            "--strict" => validation = ValidationMode::Strict,
            "--kernel" => {
                let v = it
                    .next()
                    .ok_or("--kernel needs a name (scalar, swar, sse2, avx2)")?;
                let k = Kernel::from_name(&v)
                    .ok_or_else(|| format!("unknown kernel: {v} (scalar, swar, sse2, avx2)"))?;
                if !k.is_supported() {
                    return Err(format!("kernel {v} is not supported on this CPU"));
                }
                kernel = Some(k);
            }
            "--max-record-bytes" => {
                limits = limits.max_record_bytes(num("--max-record-bytes")?.max(1) as usize)
            }
            "--max-depth" => limits = limits.max_depth(num("--max-depth")?.max(1) as usize),
            "-h" | "--help" => return Err("\u{1}help".to_string()),
            other => return Err(format!("unknown serve option: {other}\n\n{SERVE_USAGE}")),
        }
    }
    if opts.config.index_cache.is_some() && opts.config.corpus_dir.is_none() {
        return Err(format!(
            "--index-cache requires --corpus-dir\n\n{SERVE_USAGE}"
        ));
    }
    if opts.config.index_warm && opts.config.corpus_dir.is_none() {
        return Err(format!(
            "--index-warm requires --corpus-dir\n\n{SERVE_USAGE}"
        ));
    }
    opts.config.engine_config = EngineConfig::builder()
        .limits(limits)
        .validation(validation)
        .kernel(kernel)
        .build();
    opts.config.limits = limits;
    Ok(opts)
}

/// Binds and runs the daemon until a signal-initiated drain, translating
/// the outcome to the CLI exit-code contract: `0` for a programmatic
/// shutdown, [`EXIT_CANCELLED`] (130) after a SIGINT/SIGTERM drain.
///
/// # Errors
///
/// [`CliError::Io`] when binding or running the listener fails.
pub fn run_serve(opts: &ServeOptions) -> Result<u8, CliError> {
    let server = match &opts.unix {
        #[cfg(unix)]
        Some(path) => Server::bind_unix(path, opts.config.clone())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?,
        #[cfg(not(unix))]
        Some(_) => {
            return Err(CliError::Usage(
                "--unix is not supported on this platform".into(),
            ))
        }
        None => Server::bind_tcp(&opts.listen, opts.config.clone())
            .map_err(|e| CliError::Io(format!("{}: {e}", opts.listen)))?,
    };
    // Machine-parseable: tests (and humans) discover ephemeral ports here.
    eprintln!("jsonski: listening on {}", server.local_addr());
    let token = server.shutdown_token();
    #[cfg(unix)]
    let signalled = crate::signals::install(token.clone());
    #[cfg(not(unix))]
    let signalled = false;
    let summary = server
        .run()
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    eprintln!(
        "jsonski: drained; {} requests ({} ok, {} shed, {} timeouts, {} panics)",
        summary.requests, summary.ok, summary.shed, summary.timeouts, summary.panics
    );
    // `run` returns only after the shutdown token tripped; when the signal
    // handler is what tripped it, honor the cancellation exit code.
    Ok(if signalled && token.is_cancelled() {
        EXIT_CANCELLED
    } else {
        0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeOptions, CliError> {
        parse_serve_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sane() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.listen, DEFAULT_LISTEN);
        assert!(opts.unix.is_none());
        assert_eq!(opts.config.workers, 4);
        assert_eq!(opts.config.max_queue, 64);
        assert!(!opts.config.metrics_endpoint);
        assert_eq!(opts.config.error_policy, ErrorPolicy::FailFast);
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse(&[
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "8",
            "--tenant-quota",
            "3",
            "--deadline-ms",
            "500",
            "--max-deadline-ms",
            "1000",
            "--read-timeout-ms",
            "100",
            "--stall-budget",
            "2",
            "--write-timeout-ms",
            "150",
            "--write-stall-budget",
            "3",
            "--corpus-dir",
            "/tmp/corpora",
            "--index-cache",
            "/tmp/indexes",
            "--index-warm",
            "--memory-budget",
            "8388608",
            "--tenant-memory-budget",
            "1048576",
            "--chunk-bytes",
            "4096",
            "--max-frame-bytes",
            "1048576",
            "--cache",
            "16",
            "--metrics-endpoint",
            "--skip-malformed",
            "--strict",
            "--max-record-bytes",
            "65536",
        ])
        .unwrap();
        assert_eq!(opts.listen, "127.0.0.1:0");
        assert_eq!(opts.config.workers, 2);
        assert_eq!(opts.config.max_queue, 8);
        assert_eq!(opts.config.tenant_quota, 3);
        assert_eq!(opts.config.default_deadline, Duration::from_millis(500));
        assert_eq!(opts.config.max_deadline, Duration::from_millis(1000));
        assert_eq!(opts.config.read_timeout, Duration::from_millis(100));
        assert_eq!(opts.config.stall_budget, 2);
        assert_eq!(opts.config.write_timeout, Duration::from_millis(150));
        assert_eq!(opts.config.write_stall_budget, 3);
        assert_eq!(
            opts.config.corpus_dir.as_deref(),
            Some(std::path::Path::new("/tmp/corpora"))
        );
        assert_eq!(
            opts.config.index_cache.as_deref(),
            Some(std::path::Path::new("/tmp/indexes"))
        );
        assert_eq!(opts.config.max_frame_bytes, 1_048_576);
        assert!(opts.config.index_warm);
        assert_eq!(opts.config.memory_budget, 8_388_608);
        assert_eq!(opts.config.tenant_memory_budget, 1_048_576);
        assert_eq!(opts.config.chunk_bytes, 4096);
        assert_eq!(opts.config.cache_capacity, 16);
        assert!(opts.config.metrics_endpoint);
        assert_eq!(opts.config.error_policy, ErrorPolicy::SkipMalformed);
        assert_eq!(opts.config.engine_config.validation, ValidationMode::Strict);
        assert_eq!(opts.config.limits.max_record_bytes, 65_536);
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        assert!(matches!(parse(&["--nope"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["--workers"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["--workers", "abc"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&["--help"]), Err(CliError::Help)));
        assert!(matches!(
            parse(&["--kernel", "quantum"]),
            Err(CliError::Usage(_))
        ));
        // The index cache is keyed to stored corpora; alone it is a
        // configuration mistake, not a silent no-op.
        assert!(matches!(
            parse(&["--index-cache", "/tmp/idx"]),
            Err(CliError::Usage(_))
        ));
        // Same reasoning for startup index warming.
        assert!(matches!(parse(&["--index-warm"]), Err(CliError::Usage(_))));
    }
}
