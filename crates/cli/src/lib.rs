//! Library half of the `jsonski` command-line tool: argument parsing and
//! the run loop, separated from `main` so they are unit-testable.

#![deny(missing_docs)]

use std::io::{Read, Write};
use std::ops::ControlFlow;
use std::path::{Path, PathBuf};

use jsonski::{
    digest_parts, fingerprint, CancellationToken, Checkpoint, CheckpointCadence, EngineConfig,
    EngineError, ErrorPolicy, Evaluate, JsonSki, Kernel, Metrics, MetricsSnapshot, MultiQuery,
    Pipeline, PipelineSummary, ReadRecordError, ResourceLimits, RetryPolicy, ValidationMode,
    FINGERPRINT_BYTES,
};

pub mod serve;
#[cfg(unix)]
pub mod signals;

/// Exit code for a run cancelled by a signal (128 + SIGINT by convention).
pub const EXIT_CANCELLED: u8 = 130;
/// Exit code for a run that completed but skipped records under
/// `--skip-malformed`.
pub const EXIT_SKIPPED: u8 = 3;

/// A CLI failure, classified so `main` can map it to a distinct exit code:
/// `0` success, `1` usage or I/O error, `2` fatal evaluation error,
/// `3` completed with skips, `130` cancelled by a signal.
#[derive(Debug)]
pub enum CliError {
    /// Bad flags, arguments, or query syntax (exit 1).
    Usage(String),
    /// `--help` was requested (exit 0; the caller prints [`USAGE`]).
    Help,
    /// Reading the input or writing the output failed (exit 1).
    Io(String),
    /// A record failed to evaluate under fail-fast (exit 2).
    Fatal(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Help => 0,
            CliError::Usage(_) | CliError::Io(_) => 1,
            CliError::Fatal(_) => 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Fatal(m) => f.write_str(m),
            CliError::Help => f.write_str(USAGE),
        }
    }
}

impl std::error::Error for CliError {}

fn engine_error_to_cli(e: &EngineError) -> CliError {
    match e {
        EngineError::Io(_) => CliError::Io(e.to_string()),
        _ => CliError::Fatal(e.to_string()),
    }
}

/// How a completed run went, for exit-code selection: `130` when
/// cancelled, [`EXIT_SKIPPED`] when records were skipped, `0` otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Matches per query, in query order.
    pub counts: Vec<usize>,
    /// Records skipped (evaluation failures, limit rejections, and
    /// resynchronized spans) under `--skip-malformed`.
    pub skipped: u64,
    /// The run was cut short by cooperative cancellation.
    pub cancelled: bool,
}

impl RunReport {
    /// The process exit code for this outcome.
    pub fn exit_code(&self) -> u8 {
        if self.cancelled {
            EXIT_CANCELLED
        } else if self.skipped > 0 {
            EXIT_SKIPPED
        } else {
            0
        }
    }
}

/// Cross-cutting run controls: cooperative cancellation and durable
/// checkpointing. [`RunControls::default`] disables both, which is what the
/// plain [`run`]/[`run_reader`] wrappers use.
#[derive(Clone, Debug, Default)]
pub struct RunControls {
    /// Checked at record boundaries; flipping it drains in-flight work and
    /// exits with [`EXIT_CANCELLED`].
    pub cancel: Option<CancellationToken>,
    /// Durable progress tracking (single-query runs only).
    pub checkpoint: Option<CheckpointSetup>,
}

/// Where and how often to persist progress.
#[derive(Clone, Debug)]
pub struct CheckpointSetup {
    /// Checkpoint file path (written atomically: tmp + fsync + rename).
    pub path: PathBuf,
    /// Accumulated progress from previous segments (fresh for a new run,
    /// loaded from `path` under `--resume`).
    pub baseline: Checkpoint,
    /// Checkpoint every N delivered records.
    pub every: u64,
}

/// What is knowable about the input's identity for checkpoint validation.
/// All fields are `None` for unseekable stdin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InputIdentity {
    /// Input length in bytes.
    pub len: Option<u64>,
    /// [`fingerprint`] of the first [`FINGERPRINT_BYTES`] bytes.
    pub head: Option<u64>,
    /// [`fingerprint`] of the last [`FINGERPRINT_BYTES`] bytes.
    pub tail: Option<u64>,
}

impl InputIdentity {
    /// Identity of an unseekable stream (nothing knowable).
    pub fn unknown() -> Self {
        InputIdentity::default()
    }

    /// Identity of an in-memory input.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let head_len = bytes.len().min(FINGERPRINT_BYTES);
        let tail_start = bytes.len().saturating_sub(FINGERPRINT_BYTES);
        InputIdentity {
            len: Some(bytes.len() as u64),
            head: Some(fingerprint(&bytes[..head_len])),
            tail: Some(fingerprint(&bytes[tail_start..])),
        }
    }

    /// Identity of a file on disk (reads at most 2×[`FINGERPRINT_BYTES`]).
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn of_file(path: &Path) -> std::io::Result<Self> {
        use std::io::{Seek, SeekFrom};
        let mut f = std::fs::File::open(path)?;
        let len = f.metadata()?.len();
        let mut head = vec![0u8; (len as usize).min(FINGERPRINT_BYTES)];
        f.read_exact(&mut head)?;
        let tail_start = len.saturating_sub(FINGERPRINT_BYTES as u64);
        f.seek(SeekFrom::Start(tail_start))?;
        let mut tail = vec![0u8; (len - tail_start) as usize];
        f.read_exact(&mut tail)?;
        Ok(InputIdentity {
            len: Some(len),
            head: Some(fingerprint(&head)),
            tail: Some(fingerprint(&tail)),
        })
    }
}

/// The digest binding a checkpoint to the query set, error policy,
/// validation mode, and forced kernel, so a resume under different
/// semantics is refused. Strictness matters because a Permissive run may
/// have committed records a Strict resume would reject; the kernel matters
/// because a forced-kernel run exists to test *that* kernel end to end.
pub fn config_digest(opts: &Options) -> u64 {
    let mut parts: Vec<String> = opts.queries.clone();
    parts.push(if opts.skip_malformed { "skip" } else { "fail" }.to_string());
    parts.push(
        match opts.validation {
            ValidationMode::Permissive => "permissive",
            ValidationMode::Strict => "strict",
        }
        .to_string(),
    );
    parts.push(match opts.kernel {
        Some(k) => format!("kernel={}", k.name()),
        None => "kernel=auto".to_string(),
    });
    digest_parts(&parts)
}

/// A validated plan for a (possibly resumed) checkpointed run.
#[derive(Clone, Debug)]
pub struct ResumePlan {
    /// Path, cadence, and accumulated baseline for the run.
    pub setup: CheckpointSetup,
    /// Input byte offset to start reading from (0 for a fresh run).
    pub start_offset: u64,
    /// The loaded checkpoint says the run already finished; there is
    /// nothing to do.
    pub complete: bool,
}

/// Builds the checkpoint plan for this invocation: a fresh baseline, or —
/// under `--resume` — the validated state loaded from the checkpoint file.
///
/// # Errors
///
/// [`CliError::Io`] when the checkpoint file cannot be read;
/// [`CliError::Usage`] when it belongs to a different query set / policy or
/// a different input.
pub fn prepare_checkpoint(
    opts: &Options,
    identity: &InputIdentity,
) -> Result<Option<ResumePlan>, CliError> {
    let Some(path) = &opts.checkpoint else {
        return Ok(None);
    };
    let path = PathBuf::from(path);
    let every = opts.checkpoint_every.unwrap_or(1024);
    let digest = config_digest(opts);
    if !opts.resume {
        let mut baseline = Checkpoint::new(digest);
        baseline.input_len = identity.len;
        baseline.fingerprint_head = identity.head;
        baseline.fingerprint_tail = identity.tail;
        return Ok(Some(ResumePlan {
            setup: CheckpointSetup {
                path,
                baseline,
                every,
            },
            start_offset: 0,
            complete: false,
        }));
    }
    let ck =
        Checkpoint::load(&path).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    if ck.identity != digest {
        return Err(CliError::Usage(format!(
            "{}: checkpoint was written by a different query set, error policy, \
             validation mode, or kernel; refusing to resume",
            path.display()
        )));
    }
    let mismatch = |a: Option<u64>, b: Option<u64>| matches!((a, b), (Some(x), Some(y)) if x != y);
    if mismatch(ck.input_len, identity.len)
        || mismatch(ck.fingerprint_head, identity.head)
        || mismatch(ck.fingerprint_tail, identity.tail)
    {
        return Err(CliError::Usage(format!(
            "{}: checkpoint does not match this input (length or content changed); \
             refusing to resume",
            path.display()
        )));
    }
    Ok(Some(ResumePlan {
        start_offset: ck.offset,
        complete: ck.complete,
        setup: CheckpointSetup {
            path,
            baseline: ck,
            every,
        },
    }))
}

/// Output format for the `--metrics` engine-counter report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsMode {
    /// Human-readable multi-line report.
    Text,
    /// Single-line JSON object.
    Json,
}

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Options {
    /// The JSONPath expressions to evaluate (one or more).
    pub queries: Vec<String>,
    /// Input file, or `None` for stdin.
    pub file: Option<String>,
    /// Print only the match count(s).
    pub count_only: bool,
    /// Print fast-forward statistics to stderr after the run.
    pub stats: bool,
    /// Stop after this many matches (0 = unlimited).
    pub limit: usize,
    /// Pipeline workers for streamed input (1 = serial).
    pub jobs: usize,
    /// Skip records that fail to evaluate instead of aborting.
    pub skip_malformed: bool,
    /// Print engine counters to stderr after the run, in this format.
    pub metrics: Option<MetricsMode>,
    /// Reject records larger than this many bytes (`None` = default cap).
    pub max_record_bytes: Option<usize>,
    /// Reject records nested deeper than this (`None` = default cap).
    pub max_depth: Option<usize>,
    /// Cap the streaming reader's buffer at this many bytes.
    pub max_buffer_bytes: Option<usize>,
    /// Retry budget for transient reader errors (`WouldBlock`/`TimedOut`).
    pub retry: u32,
    /// Persist progress to this checkpoint file (single query only).
    pub checkpoint: Option<String>,
    /// Checkpoint every N delivered records (default 1024).
    pub checkpoint_every: Option<u64>,
    /// Resume from the state in the `--checkpoint` file.
    pub resume: bool,
    /// How much well-formedness checking each record receives. `--strict`
    /// validates every byte — including fast-forwarded spans — for UTF-8,
    /// escape grammar, balanced structure, and trailing garbage.
    pub validation: ValidationMode,
    /// Force a specific classification kernel (`--kernel`) instead of the
    /// best one the CPU supports; used for differential verification.
    pub kernel: Option<Kernel>,
    /// How match lines are rendered (`--extract raw|typed`).
    pub extract: ExtractMode,
}

/// Match rendering mode for `--extract`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractMode {
    /// Emit the raw JSON span exactly as it appears in the input.
    #[default]
    Raw,
    /// Decode scalars on demand: string matches are unquoted and
    /// unescaped (a non-decodable string falls back to its raw span);
    /// numbers, booleans, `null`, and containers are emitted raw, which
    /// is already their typed textual form.
    Typed,
}

/// Appends one rendered match to `buf` under the given extract mode.
fn append_match(buf: &mut Vec<u8>, m: &jsonski::Match<'_>, mode: ExtractMode) {
    match mode {
        ExtractMode::Raw => buf.extend_from_slice(m.bytes()),
        ExtractMode::Typed => match m.value().as_str() {
            Ok(s) => buf.extend_from_slice(s.as_bytes()),
            Err(_) => buf.extend_from_slice(m.bytes()),
        },
    }
}

impl Options {
    /// The [`ResourceLimits`] these options configure (defaults where no
    /// flag was given).
    fn limits(&self) -> ResourceLimits {
        let mut limits = ResourceLimits::default();
        if let Some(n) = self.max_record_bytes {
            limits = limits.max_record_bytes(n);
        }
        if let Some(n) = self.max_depth {
            limits = limits.max_depth(n);
        }
        if let Some(n) = self.max_buffer_bytes {
            limits = limits.max_buffer_bytes(n);
        }
        limits
    }

    /// The full [`EngineConfig`] these options configure: resource limits,
    /// validation mode, and any forced kernel.
    fn engine_config(&self) -> EngineConfig {
        EngineConfig::builder()
            .limits(self.limits())
            .validation(self.validation)
            .kernel(self.kernel)
            .build()
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: jsonski [OPTIONS] QUERY [QUERY...] [FILE]
       jsonski serve [OPTIONS]        (see `jsonski serve --help`)

Streams JSONPath matches from FILE (or stdin) using bit-parallel
fast-forwarding. The input may be a single JSON record or a sequence of
whitespace/newline-separated records (e.g. JSON Lines).

options:
  -c, --count        print the number of matches instead of the matches
  -s, --stats        print fast-forward statistics to stderr
  -n, --limit N      stop after N matches
  -j, --jobs N       evaluate stdin records on N parallel pipeline workers
                     (single query only; output order is still record order)
      --skip-malformed
                     skip records that fail to evaluate (reported on stderr)
                     instead of aborting the whole stream
      --extract MODE render matches as `raw` JSON spans (default) or
                     `typed`: string matches are printed unquoted and
                     unescaped; other values keep their JSON form
      --metrics FMT  print engine counters (fast-forward ratio, bitmap,
                     pipeline and robustness health) to stderr after the
                     run; FMT is `text` or `json`. With multiple queries on
                     file input each query is additionally re-measured.
      --max-record-bytes N
                     reject records larger than N bytes (default 256 MiB);
                     with --skip-malformed the stream keeps going
      --max-depth N  reject records nested deeper than N containers
      --max-buffer-bytes N
                     cap the streaming reader's buffer at N bytes, so a
                     record that never closes cannot exhaust memory
      --strict       validate every byte of every record — including spans
                     the engine fast-forwards over — for UTF-8
                     well-formedness, string escape grammar, balanced
                     structure, and trailing garbage; the first violation
                     aborts the record with its byte offset (skippable with
                     --skip-malformed)
      --kernel NAME  force the bitmap classification kernel (scalar, swar,
                     sse2, avx2) instead of auto-detecting the best one;
                     errors if this CPU does not support NAME. Equivalent
                     to setting JSONSKI_KERNEL=NAME
      --retry N      retry transient stream errors (would-block/timed-out)
                     up to N times per read before giving up
      --checkpoint PATH
                     persist progress to PATH (atomically rewritten as the
                     run advances) so an interrupted run can be resumed;
                     single query only
      --checkpoint-every N
                     checkpoint every N delivered records (default 1024)
      --resume       continue from the state in the --checkpoint file,
                     skipping input the previous run already committed
  -h, --help         show this help

Multiple QUERY arguments are evaluated together in one streaming pass;
each match line is then prefixed with its query index.

exit codes: 0 success; 1 usage or I/O error; 2 a record failed to evaluate
(without --skip-malformed); 3 completed but skipped records; 130 cancelled
by SIGINT/SIGTERM (in-flight records finish, then progress is committed).

supported JSONPath: $  .name  ['name']  [n]  [m:n]  [*]  .*  ..name
..[n]  ..*  ['a','b']  [0,2]  [?(@.x > 1)]  (filters compare an element
or its @-path against a number, string, bool, or null)";

/// Parses argv-style arguments (program name excluded).
///
/// # Errors
///
/// [`CliError::Usage`] with a human-readable message for unknown flags or
/// missing arguments; [`CliError::Help`] for `--help`.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, CliError> {
    parse_args_inner(args).map_err(|e| {
        if e == HELP_SENTINEL {
            CliError::Help
        } else {
            CliError::Usage(e)
        }
    })
}

const HELP_SENTINEL: &str = "\u{1}help";

fn parse_args_inner<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut opts = Options {
        queries: Vec::new(),
        file: None,
        count_only: false,
        stats: false,
        limit: 0,
        jobs: 1,
        skip_malformed: false,
        metrics: None,
        max_record_bytes: None,
        max_depth: None,
        max_buffer_bytes: None,
        retry: 0,
        checkpoint: None,
        checkpoint_every: None,
        resume: false,
        validation: ValidationMode::Permissive,
        kernel: None,
        extract: ExtractMode::Raw,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-c" | "--count" => opts.count_only = true,
            "-s" | "--stats" => opts.stats = true,
            "-n" | "--limit" => {
                let v = it.next().ok_or("--limit needs a number")?;
                opts.limit = v.parse().map_err(|_| format!("bad limit: {v}"))?;
            }
            "-j" | "--jobs" => {
                let v = it.next().ok_or("--jobs needs a number")?;
                opts.jobs = v.parse().map_err(|_| format!("bad job count: {v}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--skip-malformed" => opts.skip_malformed = true,
            "--extract" => {
                let v = it.next().ok_or("--extract needs a mode (raw or typed)")?;
                opts.extract = match v.as_str() {
                    "raw" => ExtractMode::Raw,
                    "typed" => ExtractMode::Typed,
                    other => return Err(format!("unknown extract mode: {other} (raw or typed)")),
                };
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a format (text or json)")?;
                opts.metrics = Some(match v.as_str() {
                    "text" => MetricsMode::Text,
                    "json" => MetricsMode::Json,
                    other => return Err(format!("bad metrics format: {other} (text or json)")),
                });
            }
            "--max-record-bytes" => {
                let v = it.next().ok_or("--max-record-bytes needs a number")?;
                let n: usize = v.parse().map_err(|_| format!("bad record cap: {v}"))?;
                if n == 0 {
                    return Err("--max-record-bytes must be at least 1".into());
                }
                opts.max_record_bytes = Some(n);
            }
            "--max-depth" => {
                let v = it.next().ok_or("--max-depth needs a number")?;
                let n: usize = v.parse().map_err(|_| format!("bad depth cap: {v}"))?;
                if n == 0 {
                    return Err("--max-depth must be at least 1".into());
                }
                opts.max_depth = Some(n);
            }
            "--max-buffer-bytes" => {
                let v = it.next().ok_or("--max-buffer-bytes needs a number")?;
                let n: usize = v.parse().map_err(|_| format!("bad buffer cap: {v}"))?;
                if n == 0 {
                    return Err("--max-buffer-bytes must be at least 1".into());
                }
                opts.max_buffer_bytes = Some(n);
            }
            "--retry" => {
                let v = it.next().ok_or("--retry needs a number")?;
                opts.retry = v.parse().map_err(|_| format!("bad retry count: {v}"))?;
            }
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a file path")?;
                opts.checkpoint = Some(v);
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a number")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad checkpoint cadence: {v}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                opts.checkpoint_every = Some(n);
            }
            "--resume" => opts.resume = true,
            "--strict" => opts.validation = ValidationMode::Strict,
            "--kernel" => {
                let v = it
                    .next()
                    .ok_or("--kernel needs a name (scalar, swar, sse2, avx2)")?;
                let k = Kernel::from_name(&v)
                    .ok_or_else(|| format!("unknown kernel: {v} (scalar, swar, sse2, avx2)"))?;
                if !k.is_supported() {
                    return Err(format!("kernel {v} is not supported on this CPU"));
                }
                opts.kernel = Some(k);
            }
            "-h" | "--help" => return Err(HELP_SENTINEL.to_string()),
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown option: {flag}\n\n{USAGE}"));
            }
            _ => positional.push(arg),
        }
    }
    // Every leading positional that parses as a path is a query; at most
    // one trailing non-path positional is the input file.
    for (i, p) in positional.iter().enumerate() {
        if p.starts_with('$') {
            opts.queries.push(p.clone());
        } else if i == positional.len() - 1 {
            opts.file = Some(p.clone());
        } else {
            return Err(format!("queries must start with `$`: {p}"));
        }
    }
    if opts.queries.is_empty() {
        return Err(format!("no query given\n\n{USAGE}"));
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err("--resume needs --checkpoint".into());
    }
    if opts.checkpoint.is_some() && opts.queries.len() > 1 {
        return Err("--checkpoint applies to single-query runs only".into());
    }
    if opts.checkpoint_every.is_some() && opts.checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint".into());
    }
    Ok(opts)
}

/// What [`run_with_outcome`] did: the per-query match counts and how far
/// into the input the scan advanced. An early exit (`--limit`) leaves
/// `consumed` short of the input length — the bytes after it were never
/// examined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Matches per query, in query order.
    pub counts: Vec<usize>,
    /// Number of input bytes examined before the scan ended.
    pub consumed: usize,
    /// Records skipped under `--skip-malformed` (including resyncs).
    pub skipped: u64,
    /// The scan was cut short by cooperative cancellation.
    pub cancelled: bool,
}

fn write_counts(opts: &Options, counts: &[usize], out: &mut dyn Write) -> Result<(), String> {
    if opts.count_only {
        for (q, c) in opts.queries.iter().zip(counts) {
            writeln!(out, "{c}\t{q}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn report_skipped(skipped: u64) {
    if skipped > 0 {
        eprintln!("jsonski: skipped {skipped} malformed record(s)");
    }
}

fn report_resynced(resyncs: u64, bytes: u64) {
    if resyncs > 0 {
        eprintln!(
            "jsonski: resynchronized past {resyncs} broken span(s) ({bytes} bytes discarded)"
        );
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the `--metrics` report: one entry per individually-measured
/// query (may be empty on streamed multi-query input, where records cannot
/// be replayed) plus the aggregate counters of the live run.
fn render_metrics(
    mode: MetricsMode,
    per_query: &[(String, MetricsSnapshot)],
    aggregate: &MetricsSnapshot,
) -> String {
    match mode {
        MetricsMode::Text => {
            let mut s = String::new();
            for (q, snap) in per_query {
                s.push_str(&format!("metrics[{q}]:\n"));
                for line in snap.to_string().lines() {
                    s.push_str(&format!("  {line}\n"));
                }
            }
            s.push_str("metrics[aggregate]:\n");
            for line in aggregate.to_string().lines() {
                s.push_str(&format!("  {line}\n"));
            }
            s
        }
        MetricsMode::Json => {
            let mut s = String::from("{\"queries\":[");
            for (i, (q, snap)) in per_query.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"query\":\"{}\",\"metrics\":{}}}",
                    json_escape(q),
                    snap.to_json()
                ));
            }
            s.push_str(&format!("],\"aggregate\":{}}}", aggregate.to_json()));
            s
        }
    }
}

fn emit_metrics(
    mode: MetricsMode,
    per_query: &[(String, MetricsSnapshot)],
    aggregate: &MetricsSnapshot,
) {
    eprint!("{}", render_metrics(mode, per_query, aggregate));
    if mode == MetricsMode::Json {
        eprintln!();
    }
}

/// Measures each query in isolation over the in-memory input with a fresh
/// [`Metrics`] registry, so a multi-query run can still report a
/// fast-forward ratio *per query* (the live combined pass only yields
/// aggregate counters).
fn measure_queries(
    queries: &[String],
    input: &[u8],
    skip_malformed: bool,
    config: EngineConfig,
) -> Result<Vec<(String, MetricsSnapshot)>, String> {
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let engine = JsonSki::compile(q)
            .map_err(|e| e.to_string())?
            .with_config(config);
        let metrics = Metrics::new();
        let mut sink = jsonski::CountSink::default();
        for (idx, span) in jsonski::RecordSplitter::new(input).enumerate() {
            let (s, e) = span.map_err(|e| e.to_string())?;
            let outcome = engine.evaluate_metered(&input[s..e], idx as u64, &mut sink, &metrics);
            if let jsonski::RecordOutcome::Failed(err) = outcome {
                if !skip_malformed {
                    return Err(err.to_string());
                }
                metrics.record_skipped_record();
            }
        }
        out.push((q.clone(), metrics.snapshot()));
    }
    Ok(out)
}

/// Runs the tool over an in-memory input, writing matches to `out`.
/// Returns the per-query match counts.
///
/// # Errors
///
/// Query-compilation, streaming, or I/O errors as strings.
pub fn run(opts: &Options, input: &[u8], out: &mut dyn Write) -> Result<Vec<usize>, String> {
    run_with_outcome(opts, input, out).map(|o| o.counts)
}

/// Like [`run`], also reporting how many input bytes were examined (an
/// early `--limit` exit stops the scan mid-stream).
///
/// # Errors
///
/// Query-compilation, streaming, or I/O errors as strings.
pub fn run_with_outcome(
    opts: &Options,
    input: &[u8],
    out: &mut dyn Write,
) -> Result<RunOutcome, String> {
    run_ctl(opts, input, out, &RunControls::default()).map_err(|e| e.to_string())
}

/// [`run_with_outcome`] with [`RunControls`]: cancellation is honoured at
/// record boundaries. (In-memory runs do not checkpoint — `main` routes
/// `--checkpoint` runs through the streaming path even for file input.)
///
/// # Errors
///
/// [`CliError`], classified for exit-code selection.
pub fn run_ctl(
    opts: &Options,
    input: &[u8],
    out: &mut dyn Write,
    controls: &RunControls,
) -> Result<RunOutcome, CliError> {
    let cancellation = controls.cancel.as_ref();
    let mut cancelled = false;
    let mut counts = vec![0usize; opts.queries.len()];
    let mut total_stats = jsonski::FastForwardStats::new();
    let mut emitted = 0usize;
    let mut skipped = 0u64;
    let mut resyncs = 0u64;
    let mut resync_bytes = 0u64;
    let mut consumed = 0usize;
    let limits = opts.limits();
    // Aggregate counters for the live pass; a disabled registry makes every
    // `record_stream` call a no-op so runs without `--metrics` pay nothing.
    let agg = if opts.metrics.is_some() {
        Metrics::new()
    } else {
        Metrics::disabled()
    };
    let single = if opts.queries.len() == 1 {
        Some(
            JsonSki::compile(&opts.queries[0])
                .map_err(|e| CliError::Usage(e.to_string()))?
                .with_config(opts.engine_config()),
        )
    } else {
        None
    };
    let multi = if single.is_none() {
        let queries: Vec<&str> = opts.queries.iter().map(|s| s.as_str()).collect();
        Some(
            MultiQuery::compile(&queries)
                .map_err(|e| CliError::Usage(e.to_string()))?
                .with_limits(limits)
                .with_validation(opts.validation)
                .with_kernel(opts.kernel),
        )
    } else {
        None
    };
    // Per-record staging: a streaming engine can emit matches before it
    // diagnoses an error later in the same record, so output and counts are
    // committed only once the record evaluates cleanly — the same
    // discard-on-failure rule the parallel pipeline applies.
    let mut buf: Vec<u8> = Vec::new();
    let mut rec_counts = vec![0usize; opts.queries.len()];
    // Records are split lazily: when `--limit` breaks the scan, the records
    // after the break point are never even boundary-scanned.
    let mut splitter = jsonski::RecordSplitter::new(input);
    while let Some(span) = splitter.next() {
        if cancellation.is_some_and(CancellationToken::is_cancelled) {
            cancelled = true;
            break;
        }
        let (s, e) = match span {
            Ok(se) => se,
            Err(err) => {
                // Under --skip-malformed a broken record boundary is
                // recoverable: resynchronize at the next raw newline and
                // keep streaming the records after it.
                if opts.skip_malformed {
                    if let Some((from, to)) = splitter.resync() {
                        skipped += 1;
                        resyncs += 1;
                        resync_bytes += (to - from) as u64;
                        consumed = to;
                        agg.record_resync((to - from) as u64);
                        agg.record_skipped_record();
                        continue;
                    }
                }
                return Err(CliError::Fatal(err.to_string()));
            }
        };
        let record = &input[s..e];
        if record.len() > limits.max_record_bytes {
            let err = jsonski::LimitExceeded::RecordBytes {
                len: record.len(),
                limit: limits.max_record_bytes,
            };
            if opts.skip_malformed {
                skipped += 1;
                consumed = e;
                agg.record_limit_rejection();
                agg.record_skipped_record();
                continue;
            }
            return Err(CliError::Fatal(format!("resource limit exceeded: {err}")));
        }
        buf.clear();
        rec_counts.iter_mut().for_each(|c| *c = 0);
        let mut rec_emitted = 0usize;
        // The stopwatch is a no-op unless the `metrics` feature is on AND
        // the registry is live, so the timed wrapper costs nothing here.
        let sw = agg.stopwatch();
        let result = if let Some(engine) = &single {
            engine.stream(record, |m| {
                rec_counts[0] += 1;
                rec_emitted += 1;
                if !opts.count_only {
                    append_match(&mut buf, &m, opts.extract);
                    buf.push(b'\n');
                }
                if opts.limit > 0 && emitted + rec_emitted >= opts.limit {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
        } else {
            multi.as_ref().unwrap().stream(record, |i, m| {
                rec_counts[i] += 1;
                rec_emitted += 1;
                if !opts.count_only {
                    buf.extend_from_slice(format!("{i}\t").as_bytes());
                    append_match(&mut buf, &m, opts.extract);
                    buf.push(b'\n');
                }
                if opts.limit > 0 && emitted + rec_emitted >= opts.limit {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
        };
        let eval_ns = sw.elapsed_ns();
        agg.add_eval_ns(eval_ns);
        match result {
            Ok(outcome) => {
                total_stats += outcome.stats;
                consumed = s + outcome.consumed;
                agg.add_traverse_ns(eval_ns.saturating_sub(outcome.classify_ns));
                agg.record_stream(record.len(), &outcome);
                out.write_all(&buf)
                    .map_err(|e| CliError::Io(e.to_string()))?;
                for (c, d) in counts.iter_mut().zip(&rec_counts) {
                    *c += d;
                }
                emitted += rec_emitted;
                if outcome.stopped {
                    break; // --limit reached; the rest of the input is untouched
                }
            }
            Err(err) => {
                if opts.skip_malformed {
                    skipped += 1;
                    consumed = e;
                    agg.record_stream_failure(record.len());
                    agg.record_skipped_record();
                } else {
                    return Err(CliError::Fatal(err.to_string()));
                }
            }
        }
    }
    report_skipped(skipped);
    report_resynced(resyncs, resync_bytes);
    write_counts(opts, &counts, out).map_err(CliError::Io)?;
    if opts.stats {
        eprintln!("fast-forward: {total_stats}");
    }
    if let Some(mode) = opts.metrics {
        // Single query: the live pass *is* the per-query measurement. With
        // multiple queries the live pass runs them combined, so each query
        // is re-measured on its own over the full input (`--limit` applies
        // only to the live pass).
        let per_query = if single.is_some() {
            vec![(opts.queries[0].clone(), agg.snapshot())]
        } else {
            measure_queries(
                &opts.queries,
                input,
                opts.skip_malformed,
                opts.engine_config(),
            )
            .map_err(CliError::Fatal)?
        };
        emit_metrics(mode, &per_query, &agg.snapshot());
    }
    Ok(RunOutcome {
        counts,
        consumed,
        skipped,
        cancelled,
    })
}

/// Per-run checkpoint state carried by [`WriteSink`]. Matches are staged
/// in memory and only flushed to the output stream when a checkpoint is
/// persisted, so `output_bytes` in the file never overstates what reached
/// stdout — the invariant a resume harness truncates partial output to.
struct CheckpointState {
    path: PathBuf,
    baseline: Checkpoint,
    staged: Vec<u8>,
    flushed_bytes: u64,
}

/// [`jsonski::MatchSink`] that prints matches and applies `--limit`.
struct WriteSink<'a> {
    out: &'a mut dyn Write,
    count_only: bool,
    extract: ExtractMode,
    limit: usize,
    emitted: usize,
    io_error: Option<std::io::Error>,
    checkpoint: Option<CheckpointState>,
}

impl jsonski::MatchSink for WriteSink<'_> {
    fn on_match(&mut self, m: jsonski::Match<'_>) -> ControlFlow<()> {
        let decoded;
        let bytes: &[u8] = match self.extract {
            ExtractMode::Raw => m.bytes(),
            ExtractMode::Typed => match m.value().as_str() {
                Ok(s) => {
                    decoded = s;
                    decoded.as_bytes()
                }
                Err(_) => m.bytes(),
            },
        };
        self.emitted += 1;
        if !self.count_only {
            let result = if let Some(state) = &mut self.checkpoint {
                state.staged.extend_from_slice(bytes);
                state.staged.push(b'\n');
                Ok(())
            } else {
                self.out
                    .write_all(bytes)
                    .and_then(|()| self.out.write_all(b"\n"))
            };
            if let Err(err) = result {
                self.io_error = Some(err);
                return ControlFlow::Break(());
            }
        }
        if self.limit > 0 && self.emitted >= self.limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn on_checkpoint(&mut self, summary: &PipelineSummary) -> Result<(), EngineError> {
        let Some(state) = &mut self.checkpoint else {
            return Ok(());
        };
        // Flush the staged output first, then persist the file: a crash
        // between the two leaves the checkpoint behind the output (extra
        // bytes the harness truncates), never ahead of it.
        self.out
            .write_all(&state.staged)
            .and_then(|()| self.out.flush())
            .map_err(EngineError::Io)?;
        state.flushed_bytes += state.staged.len() as u64;
        state.staged.clear();
        let mut ck = state.baseline.advanced(summary);
        ck.output_bytes = state.flushed_bytes;
        ck.save(&state.path).map_err(EngineError::Io)?;
        Ok(())
    }
}

/// Runs the tool over a streaming reader with bounded memory (used for
/// stdin): records are pulled one at a time via
/// [`jsonski::ChunkedRecords`], so the process never holds the whole
/// stream. With `--jobs N` (single query) the records are fanned out to a
/// [`jsonski::Pipeline`] worker pool; matches still print in record order.
///
/// # Errors
///
/// Query-compilation, streaming, or I/O errors as strings.
pub fn run_reader<R: std::io::Read>(
    opts: &Options,
    reader: R,
    out: &mut dyn Write,
) -> Result<Vec<usize>, String> {
    run_reader_ctl(opts, reader, out, &RunControls::default())
        .map(|r| r.counts)
        .map_err(|e| e.to_string())
}

fn read_error_to_cli(e: &ReadRecordError) -> CliError {
    match e {
        ReadRecordError::Io(_) => CliError::Io(e.to_string()),
        _ => CliError::Fatal(e.to_string()),
    }
}

/// [`run_reader`] with [`RunControls`]: cancellation is honoured at record
/// boundaries, and — for single-query runs — progress can be checkpointed.
/// A checkpointed run routes through the [`jsonski::Pipeline`] even at
/// `--jobs 1`, because the checkpoint cadence hangs off the pipeline's
/// in-order merge point.
///
/// # Errors
///
/// [`CliError`], classified for exit-code selection.
pub fn run_reader_ctl<R: std::io::Read>(
    opts: &Options,
    reader: R,
    out: &mut dyn Write,
    controls: &RunControls,
) -> Result<RunReport, CliError> {
    if opts.queries.len() == 1 && (opts.jobs > 1 || controls.checkpoint.is_some()) {
        return run_reader_pipeline(opts, reader, out, controls);
    }
    if opts.jobs > 1 {
        eprintln!("jsonski: --jobs applies to single-query runs; running serially");
    }
    let queries: Vec<&str> = opts.queries.iter().map(|s| s.as_str()).collect();
    let limits = opts.limits();
    let engine = MultiQuery::compile(&queries)
        .map_err(|e| CliError::Usage(e.to_string()))?
        .with_limits(limits)
        .with_validation(opts.validation)
        .with_kernel(opts.kernel);
    let single = opts.queries.len() == 1;
    let mut counts = vec![0usize; opts.queries.len()];
    let mut total_stats = jsonski::FastForwardStats::new();
    let mut emitted = 0usize;
    let mut skipped = 0u64;
    let mut resyncs = 0u64;
    let mut resync_bytes = 0u64;
    let agg = std::sync::Arc::new(if opts.metrics.is_some() {
        Metrics::new()
    } else {
        Metrics::disabled()
    });
    let mut records = jsonski::ChunkedRecords::new(reader)
        .limits(limits)
        .retry(RetryPolicy::new(opts.retry))
        .metrics(std::sync::Arc::clone(&agg));
    if let Some(token) = &controls.cancel {
        // A tripped token makes the reader report a clean end of stream at
        // the next record boundary, so the drain below needs no extra checks.
        records = records.cancel_token(token.clone());
    }
    // Same per-record staging as `run_with_outcome`: nothing from a record
    // reaches `out` or the counts until the record evaluates cleanly.
    let mut buf: Vec<u8> = Vec::new();
    let mut rec_counts = vec![0usize; opts.queries.len()];
    loop {
        // The record borrows the reader, so the error is carried out of the
        // match as an owned value before `resync` re-borrows it.
        let failure = match records.next_record() {
            Ok(None) => break,
            Err(e) => Some(e),
            Ok(Some(record)) => {
                buf.clear();
                rec_counts.iter_mut().for_each(|c| *c = 0);
                let mut rec_emitted = 0usize;
                let sw = agg.stopwatch();
                let result = engine.stream(record, |i, m| {
                    rec_counts[i] += 1;
                    rec_emitted += 1;
                    if !opts.count_only {
                        if !single {
                            buf.extend_from_slice(format!("{i}\t").as_bytes());
                        }
                        append_match(&mut buf, &m, opts.extract);
                        buf.push(b'\n');
                    }
                    if opts.limit > 0 && emitted + rec_emitted >= opts.limit {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                let eval_ns = sw.elapsed_ns();
                agg.add_eval_ns(eval_ns);
                match result {
                    Ok(outcome) => {
                        total_stats += outcome.stats;
                        agg.add_traverse_ns(eval_ns.saturating_sub(outcome.classify_ns));
                        agg.record_stream(record.len(), &outcome);
                        out.write_all(&buf)
                            .map_err(|e| CliError::Io(e.to_string()))?;
                        for (c, d) in counts.iter_mut().zip(&rec_counts) {
                            *c += d;
                        }
                        emitted += rec_emitted;
                        if outcome.stopped {
                            break;
                        }
                    }
                    Err(err) => {
                        if opts.skip_malformed {
                            skipped += 1;
                            agg.record_stream_failure(record.len());
                            agg.record_skipped_record();
                        } else {
                            return Err(CliError::Fatal(err.to_string()));
                        }
                    }
                }
                None
            }
        };
        if let Some(e) = failure {
            // I/O failures are unrecoverable; structural and limit errors
            // are skippable under --skip-malformed by resynchronizing at
            // the next record boundary (the pipeline applies the same rule).
            if !opts.skip_malformed || matches!(e, ReadRecordError::Io(_)) {
                return Err(read_error_to_cli(&e));
            }
            match records.resync() {
                Ok(Some((from, to))) => {
                    skipped += 1;
                    resyncs += 1;
                    resync_bytes += to - from;
                    agg.record_resync(to - from);
                    agg.record_skipped_record();
                }
                Ok(None) => break, // nothing left to skip: clean end of stream
                Err(e) => return Err(read_error_to_cli(&e)),
            }
        }
    }
    let cancelled = controls
        .cancel
        .as_ref()
        .is_some_and(CancellationToken::is_cancelled);
    report_skipped(skipped);
    report_resynced(resyncs, resync_bytes);
    write_counts(opts, &counts, out).map_err(CliError::Io)?;
    if opts.stats {
        eprintln!("fast-forward: {total_stats}");
    }
    if let Some(mode) = opts.metrics {
        // Streamed records cannot be replayed for per-query re-measurement,
        // so multi-query reader runs report aggregate counters only.
        let snap = agg.snapshot();
        let per_query = if single {
            vec![(opts.queries[0].clone(), snap.clone())]
        } else {
            Vec::new()
        };
        emit_metrics(mode, &per_query, &snap);
    }
    Ok(RunReport {
        counts,
        skipped,
        cancelled,
    })
}

/// The `--jobs N` / `--checkpoint` path: records fan out to a worker pool
/// (possibly of one) and the in-order merge step feeds this process's
/// stdout; with a [`CheckpointSetup`], match output is staged per
/// checkpoint interval and flushed only when the checkpoint file is saved,
/// so the file's `output_bytes` always describes durably written output.
fn run_reader_pipeline<R: std::io::Read>(
    opts: &Options,
    reader: R,
    out: &mut dyn Write,
    controls: &RunControls,
) -> Result<RunReport, CliError> {
    let limits = opts.limits();
    let engine = JsonSki::compile(&opts.queries[0])
        .map_err(|e| CliError::Usage(e.to_string()))?
        .with_config(opts.engine_config());
    let mut source = jsonski::ChunkedRecords::new(reader)
        .limits(limits)
        .retry(RetryPolicy::new(opts.retry));
    let mut sink = WriteSink {
        out,
        count_only: opts.count_only,
        extract: opts.extract,
        limit: opts.limit,
        emitted: 0,
        io_error: None,
        checkpoint: None,
    };
    let policy = if opts.skip_malformed {
        ErrorPolicy::SkipMalformed
    } else {
        ErrorPolicy::FailFast
    };
    // One shared registry serves both `--metrics` and `--stats`: workers
    // record into it concurrently and the snapshot is read after the join.
    let registry = if opts.metrics.is_some() || opts.stats {
        Some(std::sync::Arc::new(Metrics::new()))
    } else {
        None
    };
    let mut pipeline = Pipeline::new()
        .workers(opts.jobs)
        .error_policy(policy)
        .limits(limits);
    if let Some(m) = &registry {
        pipeline = pipeline.metrics(std::sync::Arc::clone(m));
        source = source.metrics(std::sync::Arc::clone(m));
    }
    if let Some(token) = &controls.cancel {
        source = source.cancel_token(token.clone());
        pipeline = pipeline.cancel_token(token.clone());
    }
    if let Some(setup) = &controls.checkpoint {
        // Resumed segments keep whole-stream coordinates: the caller has
        // already discarded `baseline.offset` bytes from the reader.
        source = source.start_offset(setup.baseline.offset);
        pipeline = pipeline.checkpoints(CheckpointCadence::default().every_records(setup.every));
        sink.checkpoint = Some(CheckpointState {
            path: setup.path.clone(),
            baseline: setup.baseline.clone(),
            staged: Vec::new(),
            flushed_bytes: setup.baseline.output_bytes,
        });
    }
    let summary = pipeline
        .run(&engine, &mut source, &mut sink)
        .map_err(|e| engine_error_to_cli(&e))?;
    // Destructuring releases the sink's reborrow of `out` so the trailer
    // (counts line, final checkpoint) can write to it directly.
    let WriteSink {
        emitted,
        io_error,
        checkpoint,
        ..
    } = sink;
    if let Some(err) = io_error {
        return Err(CliError::Io(err.to_string()));
    }
    // Each resynced span is one abandoned record, so the skip report matches
    // the serial paths (which count resyncs as skips too).
    report_skipped(summary.failed + summary.resyncs);
    report_resynced(summary.resyncs, summary.resync_bytes);
    let counts = vec![emitted];
    write_counts(opts, &counts, out).map_err(CliError::Io)?;
    if let Some(state) = checkpoint {
        if !summary.cancelled {
            // The run finished on its own terms (end of stream or --limit):
            // mark the checkpoint complete so a later --resume is a no-op
            // instead of a partial re-run.
            let mut ck = state.baseline.advanced(&summary);
            ck.output_bytes = state.flushed_bytes;
            ck.complete = true;
            ck.save(&state.path)
                .map_err(|e| CliError::Io(format!("checkpoint save failed: {e}")))?;
        }
    }
    let snap = registry.map(|m| m.snapshot());
    if opts.stats {
        // Fast-forward counters are reconstructed from the shared registry;
        // under FailFast early-exit they cover the records that were
        // actually evaluated (workers may speculate past a `--limit` break).
        let stats = snap.as_ref().expect("registry exists when --stats is on");
        eprintln!("fast-forward: {}", stats.fast_forward_stats());
    }
    if let Some(mode) = opts.metrics {
        let snap = snap.expect("registry exists when --metrics is on");
        let per_query = vec![(opts.queries[0].clone(), snap.clone())];
        emit_metrics(mode, &per_query, &snap);
    }
    Ok(RunReport {
        counts,
        skipped: summary.failed + summary.resyncs,
        cancelled: summary.cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Options, String> {
        parse_args(v.iter().map(|s| s.to_string())).map_err(|e| e.to_string())
    }

    #[test]
    fn parses_query_and_file() {
        let o = args(&["$.a.b", "data.json"]).unwrap();
        assert_eq!(o.queries, vec!["$.a.b"]);
        assert_eq!(o.file.as_deref(), Some("data.json"));
        assert!(!o.count_only);
        assert_eq!(o.jobs, 1);
        assert!(!o.skip_malformed);
    }

    #[test]
    fn parses_flags_and_multiple_queries() {
        let o = args(&["-c", "$.a", "$[*].b", "-n", "5", "--stats"]).unwrap();
        assert_eq!(o.queries.len(), 2);
        assert!(o.count_only && o.stats);
        assert_eq!(o.limit, 5);
        assert_eq!(o.file, None);
    }

    #[test]
    fn parses_jobs_and_skip_malformed() {
        let o = args(&["-j", "8", "--skip-malformed", "$.a"]).unwrap();
        assert_eq!(o.jobs, 8);
        assert!(o.skip_malformed);
        assert!(args(&["--jobs", "0", "$.a"]).is_err());
        assert!(args(&["-j", "x", "$.a"]).is_err());
        assert!(args(&["-j"]).is_err());
    }

    #[test]
    fn parses_metrics_mode() {
        let o = args(&["--metrics", "text", "$.a"]).unwrap();
        assert_eq!(o.metrics, Some(MetricsMode::Text));
        let o = args(&["--metrics", "json", "$.a"]).unwrap();
        assert_eq!(o.metrics, Some(MetricsMode::Json));
        assert!(args(&["$.a"]).unwrap().metrics.is_none());
        assert!(args(&["--metrics", "xml", "$.a"]).is_err());
        assert!(args(&["--metrics"]).is_err());
    }

    #[test]
    fn parses_resource_guard_flags() {
        let o = args(&[
            "--max-record-bytes",
            "1024",
            "--max-depth",
            "8",
            "--max-buffer-bytes",
            "4096",
            "--retry",
            "3",
            "$.a",
        ])
        .unwrap();
        assert_eq!(o.max_record_bytes, Some(1024));
        assert_eq!(o.max_depth, Some(8));
        assert_eq!(o.max_buffer_bytes, Some(4096));
        assert_eq!(o.retry, 3);
        let l = o.limits();
        assert_eq!(l.max_record_bytes, 1024);
        assert_eq!(l.max_depth, 8);
        assert_eq!(l.max_buffer_bytes, 4096);
        // Defaults apply when no flag is given.
        let l = args(&["$.a"]).unwrap().limits();
        assert_eq!(l, ResourceLimits::default());
        assert!(args(&["--max-record-bytes", "0", "$.a"]).is_err());
        assert!(args(&["--max-depth", "x", "$.a"]).is_err());
        assert!(args(&["--max-buffer-bytes"]).is_err());
        assert!(args(&["--retry"]).is_err());
    }

    #[test]
    fn parses_extract_mode() {
        assert_eq!(args(&["$.a"]).unwrap().extract, ExtractMode::Raw);
        let o = args(&["--extract", "typed", "$.a"]).unwrap();
        assert_eq!(o.extract, ExtractMode::Typed);
        let o = args(&["--extract", "raw", "$.a"]).unwrap();
        assert_eq!(o.extract, ExtractMode::Raw);
        assert!(args(&["--extract", "json", "$.a"]).is_err());
        assert!(args(&["--extract"]).is_err());
    }

    #[test]
    fn typed_extraction_decodes_strings_and_keeps_other_values_raw() {
        let input = r#"{"name": "café \"x\"", "n": 7, "flag": true}"#.as_bytes();
        let typed = args(&["--extract", "typed", "$.*"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&typed, input, &mut out).unwrap();
        assert_eq!(counts, vec![3]);
        assert_eq!(out, "café \"x\"\n7\ntrue\n".as_bytes());
        // The default raw mode is unchanged: spans verbatim.
        let raw = args(&["$.*"]).unwrap();
        let mut out = Vec::new();
        run(&raw, input, &mut out).unwrap();
        let mut want = r#""café \"x\"""#.as_bytes().to_vec();
        want.extend_from_slice(b"\n7\ntrue\n");
        assert_eq!(out, want);
    }

    #[test]
    fn typed_extraction_applies_on_reader_pipeline_path() {
        let input = b"{\"a\": \"x\\ny\"}\n{\"a\": \"plain\"}\n" as &[u8];
        let opts = args(&["--extract", "typed", "-j", "2", "$.a"]).unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&opts, input, &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"x\ny\nplain\n");
    }

    #[test]
    fn record_size_cap_applies_to_in_memory_runs() {
        let input = b"{\"a\": 1}\n{\"a\": [1, 2, 3, 4, 5, 6, 7]}\n{\"a\": 3}\n";
        let strict = args(&["--max-record-bytes", "16", "$.a"]).unwrap();
        let mut out = Vec::new();
        let err = run(&strict, input, &mut out).unwrap_err();
        assert!(err.contains("max_record_bytes"), "{err}");
        let lenient = args(&["--max-record-bytes", "16", "--skip-malformed", "$.a"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&lenient, input, &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n3\n");
    }

    #[test]
    fn depth_cap_applies_on_descent() {
        let input = b"{\"a\": {\"b\": {\"c\": 1}}}\n{\"a\": {\"b\": {\"c\": 2}}}\n";
        let strict = args(&["--max-depth", "2", "$.a.b.c"]).unwrap();
        let mut out = Vec::new();
        assert!(run(&strict, input, &mut out).is_err());
        let roomy = args(&["--max-depth", "8", "$.a.b.c"]).unwrap();
        let mut out = Vec::new();
        assert_eq!(run(&roomy, input, &mut out).unwrap(), vec![2]);
    }

    #[test]
    fn in_memory_runs_resync_past_truncated_tail() {
        // A truncated final record breaks the boundary scan itself; with
        // --skip-malformed the run must resynchronize (here: consume the
        // broken tail), not abort and discard the clean records' output.
        let input = b"{\"a\": 1}\n{\"a\": 3}\n{\"a\": [1, 2";
        let strict = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        assert!(run(&strict, input, &mut out).is_err());
        let lenient = args(&["--skip-malformed", "$.a"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&lenient, input, &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n3\n");
    }

    #[test]
    fn metrics_do_not_disturb_output() {
        let input = b"{\"a\": [1, 2]}\n{\"a\": [3]}\n";
        for fmt in ["text", "json"] {
            let o = args(&["--metrics", fmt, "$.a[*]"]).unwrap();
            let mut out = Vec::new();
            let counts = run(&o, input, &mut out).unwrap();
            assert_eq!(counts, vec![3]);
            assert_eq!(out, b"1\n2\n3\n");
            // Multi-query triggers the per-query re-measuring pass.
            let o = args(&["--metrics", fmt, "$.a[*]", "$.a"]).unwrap();
            let mut out = Vec::new();
            let counts = run(&o, input, &mut out).unwrap();
            assert_eq!(counts, vec![3, 2]);
        }
    }

    #[test]
    fn metrics_render_reports_ff_ratio_per_query() {
        // `$.big[*]` walks the whole array; `$.a` skips over it — so the
        // per-query fast-forward ratios must come out ordered.
        let mut doc = String::from("{\"big\": [");
        for i in 0..32 {
            doc.push_str(&format!("{i}, "));
        }
        doc.push_str("99], \"a\": 1}\n");
        let input = doc.as_bytes();
        let per = measure_queries(
            &["$.big[*]".to_string(), "$.a".to_string()],
            input,
            false,
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(per.len(), 2);
        let json = render_metrics(MetricsMode::Json, &per, &per[0].1);
        assert!(json.starts_with("{\"queries\":["));
        assert!(json.contains("\"query\":\"$.big[*]\""));
        assert!(json.contains("\"query\":\"$.a\""));
        assert_eq!(json.matches("\"ff_ratio\"").count(), 3, "{json}");
        assert!(json.contains("\"aggregate\":{"));
        assert!(
            per[1].1.overall_ff_ratio() > per[0].1.overall_ff_ratio(),
            "$.a should fast-forward more than $.big[*]: {} vs {}",
            per[1].1.overall_ff_ratio(),
            per[0].1.overall_ff_ratio()
        );
        let text = render_metrics(MetricsMode::Text, &per, &per[0].1);
        assert!(text.contains("metrics[$.big[*]]:"));
        assert!(text.contains("metrics[aggregate]:"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("$['a\"b\\c']"), "$['a\\\"b\\\\c']");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }

    #[test]
    fn measure_queries_respects_skip_malformed() {
        let input = b"{\"a\": 1}\n{\"a\" 2}\n{\"a\": 3}\n";
        let cfg = EngineConfig::default();
        assert!(measure_queries(&["$.a".to_string()], input, false, cfg).is_err());
        let per = measure_queries(&["$.a".to_string()], input, true, cfg).unwrap();
        assert_eq!(per[0].1.records_skipped, 1);
        assert_eq!(per[0].1.records_failed, 1);
        assert_eq!(per[0].1.matches_emitted, 2);
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(args(&[]).is_err());
        assert!(args(&["--wat"]).is_err());
        assert!(args(&["notapath"]).unwrap_err().contains("no query"));
        assert!(args(&["file.json", "$.a"]).is_err()); // file before query
        assert!(args(&["-n"]).is_err());
        assert!(args(&["-h"]).unwrap_err().contains("usage"));
    }

    #[test]
    fn run_single_query_prints_matches() {
        let o = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, b"{\"a\": 1}\n{\"a\": \"x\"}\n{\"b\": 2}\n", &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n\"x\"\n");
    }

    #[test]
    fn run_count_only() {
        let o = args(&["-c", "$.a"]).unwrap();
        let mut out = Vec::new();
        run(&o, b"{\"a\": 1} {\"a\": 2}", &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "2\t$.a\n");
    }

    #[test]
    fn run_multi_query_prefixes_index() {
        let o = args(&["$.a", "$.b"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, br#"{"a": 1, "b": 2}"#, &mut out).unwrap();
        assert_eq!(counts, vec![1, 1]);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0\t1"));
        assert!(text.contains("1\t2"));
    }

    #[test]
    fn run_respects_limit() {
        let o = args(&["-n", "2", "$[*]"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, b"[1, 2, 3, 4]", &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n2\n");
    }

    #[test]
    fn limit_stops_scanning_early() {
        // `--limit 1` must stop the byte scan, not just truncate the output:
        // the breaking match is in the first record, so everything after it
        // stays unexamined.
        let mut input = Vec::new();
        for i in 0..1000 {
            input.extend_from_slice(format!("{{\"a\": {i}}}\n").as_bytes());
        }
        let o = args(&["-n", "1", "$.a"]).unwrap();
        let mut out = Vec::new();
        let outcome = run_with_outcome(&o, &input, &mut out).unwrap();
        assert_eq!(outcome.counts, vec![1]);
        assert!(
            outcome.consumed < input.len() / 10,
            "consumed {} of {} bytes",
            outcome.consumed,
            input.len()
        );
    }

    #[test]
    fn skip_malformed_discards_partial_matches() {
        // `{"a": [3, 30}` streams a match ("3") before the engine reaches
        // the malformed close: a skipped record must contribute *nothing*
        // to the output or counts, exactly like the parallel pipeline.
        let input = b"{\"a\": [1, 2]}\n{\"a\": [3, 30}\n{\"a\": [5, 6]}\n";
        let o = args(&["--skip-malformed", "$.a[*]"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, input, &mut out).unwrap();
        assert_eq!(counts, vec![4]);
        assert_eq!(out, b"1\n2\n5\n6\n");
        let mut out = Vec::new();
        let counts = run_reader(&o, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![4]);
        assert_eq!(out, b"1\n2\n5\n6\n");
    }

    #[test]
    fn run_reports_malformed_input() {
        let o = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        assert!(run(&o, br#"{"a": [1, 2"#, &mut out).is_err());
    }

    #[test]
    fn skip_malformed_keeps_going() {
        let input = b"{\"a\": 1}\n{\"a\" 2}\n{\"a\": 3}\n";
        let strict = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        assert!(run(&strict, input, &mut out).is_err());
        let lenient = args(&["--skip-malformed", "$.a"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&lenient, input, &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n3\n");
    }

    #[test]
    fn parses_strict_and_kernel_flags() {
        let o = args(&["$.a"]).unwrap();
        assert_eq!(o.validation, ValidationMode::Permissive);
        assert_eq!(o.kernel, None);
        let o = args(&["--strict", "$.a"]).unwrap();
        assert_eq!(o.validation, ValidationMode::Strict);
        let o = args(&["--kernel", "swar", "$.a"]).unwrap();
        assert_eq!(o.kernel, Some(Kernel::Swar));
        assert!(args(&["--kernel", "wat", "$.a"])
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(args(&["--kernel"]).is_err());
    }

    #[test]
    fn strict_flag_rejects_faults_in_skipped_spans() {
        // The fault (a raw 0xFF inside the "skip" attribute's string) sits
        // in a span `$.a` fast-forwards over: Permissive streams the match,
        // --strict reports the offending byte, and --strict
        // --skip-malformed drops the record but keeps the stream alive.
        let mut input = b"{\"skip\": \"a?b\", \"a\": 1}\n{\"a\": 2}\n".to_vec();
        input[11] = 0xFF;
        let permissive = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        assert_eq!(run(&permissive, &input, &mut out).unwrap(), vec![2]);
        assert_eq!(out, b"1\n2\n");
        let strict = args(&["--strict", "$.a"]).unwrap();
        let mut out = Vec::new();
        let err = run(&strict, &input, &mut out).unwrap_err();
        assert!(err.contains("byte 11"), "{err}");
        let mut out = Vec::new();
        let err = run_reader(&strict, &input[..], &mut out).unwrap_err();
        assert!(err.contains("byte 11"), "{err}");
        let lenient = args(&["--strict", "--skip-malformed", "$.a"]).unwrap();
        for jobs in [None, Some(4)] {
            let mut argv = vec!["--strict".to_string(), "--skip-malformed".to_string()];
            if let Some(j) = jobs {
                argv.extend(["-j".to_string(), j.to_string()]);
            }
            argv.push("$.a".to_string());
            let o = parse_args(argv).unwrap();
            let mut out = Vec::new();
            assert_eq!(run_reader(&o, &input[..], &mut out).unwrap(), vec![1]);
            assert_eq!(out, b"2\n", "jobs={jobs:?}");
        }
        let mut out = Vec::new();
        assert_eq!(run(&lenient, &input, &mut out).unwrap(), vec![1]);
        assert_eq!(out, b"2\n");
    }

    #[test]
    fn forced_kernel_output_matches_auto() {
        let input = b"{\"skip\": [1, 2, 3], \"a\": {\"b\": \"deep\"}}\n{\"a\": {\"b\": 7}}\n";
        let auto = args(&["$.a.b"]).unwrap();
        let mut expect = Vec::new();
        let reference = run(&auto, input, &mut expect).unwrap();
        for &k in Kernel::all() {
            if !k.is_supported() {
                continue;
            }
            for extra in [vec![], vec!["--strict"]] {
                let mut argv = vec!["--kernel".to_string(), k.name().to_string()];
                argv.extend(extra.iter().map(|s| (*s).to_string()));
                argv.push("$.a.b".to_string());
                let o = parse_args(argv).unwrap();
                let mut out = Vec::new();
                let counts = run(&o, input, &mut out).unwrap();
                assert_eq!(counts, reference, "kernel {k:?} strict={extra:?}");
                assert_eq!(out, expect, "kernel {k:?} strict={extra:?}");
            }
        }
    }

    #[test]
    fn resume_refuses_changed_validation_or_kernel() {
        let path = std::env::temp_dir().join(format!(
            "jsonski-cli-resume-{}-{:?}.ck",
            std::process::id(),
            std::thread::current().id()
        ));
        let input = b"{\"a\": 1}\n{\"a\": 2}\n";
        let identity = InputIdentity::of_bytes(input);
        let base = args(&["--checkpoint", path.to_str().unwrap(), "$.a"]).unwrap();
        // A fresh (non-resume) run plans a baseline bound to the current
        // validation mode and kernel; persist it as the interrupted state.
        let plan = prepare_checkpoint(&base, &identity).unwrap().unwrap();
        plan.setup.baseline.save(&plan.setup.path).unwrap();
        // Resuming with identical semantics is accepted.
        let mut resume = base.clone();
        resume.resume = true;
        assert!(prepare_checkpoint(&resume, &identity).is_ok());
        // Changing strictness or forcing a kernel changes what the run
        // would have accepted, so the resume must be refused.
        let mut strict = resume.clone();
        strict.validation = ValidationMode::Strict;
        let mut forced = resume.clone();
        forced.kernel = Some(Kernel::Swar);
        for opts in [&strict, &forced] {
            match prepare_checkpoint(opts, &identity) {
                Err(CliError::Usage(msg)) => {
                    assert!(msg.contains("refusing to resume"), "{msg}")
                }
                other => panic!("expected refusal, got {other:?}"),
            }
        }
        // And a matching strict baseline resumes under strict options.
        let plan = prepare_checkpoint(&strict, &identity);
        assert!(plan.is_err()); // still bound to the old file...
        std::fs::remove_file(&path).unwrap();
        let mut fresh_strict = strict.clone();
        fresh_strict.resume = false;
        let plan = prepare_checkpoint(&fresh_strict, &identity)
            .unwrap()
            .unwrap();
        plan.setup.baseline.save(&plan.setup.path).unwrap();
        assert!(prepare_checkpoint(&strict, &identity).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod reader_tests {
    use super::*;

    #[test]
    fn run_reader_matches_run_on_same_input() {
        let input = b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": {\"a\": 3}}\n";
        let o = parse_args(["$.a".to_string()]).unwrap();
        let mut out_mem = Vec::new();
        let c1 = run(&o, input, &mut out_mem).unwrap();
        let mut out_stream = Vec::new();
        let c2 = run_reader(&o, &input[..], &mut out_stream).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(out_mem, out_stream);
    }

    #[test]
    fn run_reader_multi_query() {
        let input = b"{\"a\": 1, \"b\": 2}\n{\"a\": 3}\n";
        let o = parse_args(["$.a".to_string(), "$.b".to_string()]).unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&o, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![2, 1]);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0\t1") && text.contains("1\t2") && text.contains("0\t3"));
    }

    #[test]
    fn run_reader_limit_and_count() {
        let input = b"[1,2,3] [4,5] [6]";
        let o = parse_args(["-c".into(), "-n".into(), "4".into(), "$[*]".into()]).unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&o, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![4]);
    }

    #[test]
    fn run_reader_propagates_malformed() {
        let o = parse_args(["$.a".to_string()]).unwrap();
        let mut out = Vec::new();
        assert!(run_reader(&o, &b"{\"a\": [1,"[..], &mut out).is_err());
    }

    /// A reader whose every odd-numbered attempt fails with `WouldBlock`
    /// and whose successful reads are short — a transiently-unhealthy pipe.
    struct Flaky<'a> {
        data: &'a [u8],
        pos: usize,
        attempts: u64,
    }

    impl std::io::Read for Flaky<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.attempts += 1;
            if self.attempts % 2 == 1 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "transient",
                ));
            }
            let k = buf.len().min(3).min(self.data.len() - self.pos);
            buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
            self.pos += k;
            Ok(k)
        }
    }

    #[test]
    fn retry_flag_survives_transient_errors() {
        let input = b"{\"a\": 1}\n{\"a\": 2}\n";
        let flaky = |d: &'static [u8]| Flaky {
            data: d,
            pos: 0,
            attempts: 0,
        };
        let no_retry = parse_args(["$.a".to_string()]).unwrap();
        let mut out = Vec::new();
        assert!(run_reader(&no_retry, flaky(input), &mut out).is_err());
        let with_retry = parse_args(["--retry".into(), "1".into(), "$.a".into()]).unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&with_retry, flaky(input), &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n2\n");
    }

    #[test]
    fn run_reader_skips_oversized_records() {
        let input = b"{\"a\": 1}\n{\"a\": [1, 2, 3, 4, 5, 6, 7]}\n{\"a\": 3}\n";
        let strict = parse_args([
            "--max-record-bytes".to_string(),
            "16".to_string(),
            "$.a".to_string(),
        ])
        .unwrap();
        let mut out = Vec::new();
        let err = run_reader(&strict, &input[..], &mut out).unwrap_err();
        assert!(err.contains("max_record_bytes"), "{err}");
        // The serial reader and the worker pipeline must agree: the
        // oversized middle record is skipped precisely, its neighbours
        // delivered.
        for jobs in [None, Some(4)] {
            let mut argv = vec![
                "--max-record-bytes".to_string(),
                "16".to_string(),
                "--skip-malformed".to_string(),
            ];
            if let Some(j) = jobs {
                argv.extend(["-j".to_string(), j.to_string()]);
            }
            argv.push("$.a".to_string());
            let o = parse_args(argv).unwrap();
            let mut out = Vec::new();
            let counts = run_reader(&o, &input[..], &mut out).unwrap();
            assert_eq!(counts, vec![2], "jobs={jobs:?}");
            assert_eq!(out, b"1\n3\n", "jobs={jobs:?}");
        }
    }

    #[test]
    fn run_reader_resyncs_past_truncated_tail() {
        let input = b"{\"a\": 1}\n{\"a\": 3}\n{\"a\": [1, 2";
        for jobs in ["1", "4"] {
            let strict =
                parse_args(["-j".to_string(), jobs.to_string(), "$.a".to_string()]).unwrap();
            let mut out = Vec::new();
            assert!(run_reader(&strict, &input[..], &mut out).is_err());
            let lenient = parse_args([
                "-j".to_string(),
                jobs.to_string(),
                "--skip-malformed".to_string(),
                "$.a".to_string(),
            ])
            .unwrap();
            let mut out = Vec::new();
            let counts = run_reader(&lenient, &input[..], &mut out).unwrap();
            assert_eq!(counts, vec![2], "jobs={jobs}");
            assert_eq!(out, b"1\n3\n", "jobs={jobs}");
        }
    }

    #[test]
    fn run_reader_parallel_output_matches_serial() {
        let mut input = Vec::new();
        for i in 0..200 {
            input.extend_from_slice(format!("{{\"a\": [{i}, {i}]}}\n").as_bytes());
        }
        let serial = parse_args(["$.a[*]".to_string()]).unwrap();
        let mut out_serial = Vec::new();
        let c1 = run_reader(&serial, &input[..], &mut out_serial).unwrap();
        let parallel = parse_args(["-j".into(), "4".into(), "$.a[*]".into()]).unwrap();
        let mut out_parallel = Vec::new();
        let c2 = run_reader(&parallel, &input[..], &mut out_parallel).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(out_serial, out_parallel, "merge must preserve record order");
    }

    #[test]
    fn run_reader_parallel_skip_malformed() {
        let input = b"{\"a\": 1}\n{\"a\" 2}\n{\"a\": 3}\n";
        let strict = parse_args(["-j".into(), "4".into(), "$.a".into()]).unwrap();
        let mut out = Vec::new();
        assert!(run_reader(&strict, &input[..], &mut out).is_err());
        let lenient = parse_args([
            "-j".into(),
            "4".into(),
            "--skip-malformed".into(),
            "$.a".into(),
        ])
        .unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&lenient, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n3\n");
    }

    #[test]
    fn metrics_and_stats_work_with_pipeline() {
        let mut input = Vec::new();
        for i in 0..50 {
            input.extend_from_slice(format!("{{\"a\": [{i}, {i}]}}\n").as_bytes());
        }
        // --metrics json and --stats both ride on the shared registry now,
        // including under --jobs > 1; output must be unaffected either way.
        let plain = parse_args(["-c".into(), "$.a[*]".into()]).unwrap();
        let mut expect = Vec::new();
        run_reader(&plain, &input[..], &mut expect).unwrap();
        for extra in [
            vec!["--metrics", "json", "-j", "4"],
            vec!["--metrics", "text", "-j", "1"],
            vec!["--stats", "-j", "4"],
        ] {
            let mut argv: Vec<String> = vec!["-c".into()];
            argv.extend(extra.iter().map(|s| (*s).to_string()));
            argv.push("$.a[*]".into());
            let o = parse_args(argv).unwrap();
            let mut out = Vec::new();
            let counts = run_reader(&o, &input[..], &mut out).unwrap();
            assert_eq!(counts, vec![100]);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn run_reader_parallel_respects_limit() {
        let mut input = Vec::new();
        for i in 0..100 {
            input.extend_from_slice(format!("{{\"a\": {i}}}\n").as_bytes());
        }
        let o = parse_args([
            "-j".into(),
            "4".into(),
            "-n".into(),
            "3".into(),
            "$.a".into(),
        ])
        .unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&o, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![3]);
        assert_eq!(out, b"0\n1\n2\n");
    }
}
