//! Library half of the `jsonski` command-line tool: argument parsing and
//! the run loop, separated from `main` so they are unit-testable.

#![deny(missing_docs)]

use std::io::Write;

use jsonski::{JsonSki, MultiQuery};

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Options {
    /// The JSONPath expressions to evaluate (one or more).
    pub queries: Vec<String>,
    /// Input file, or `None` for stdin.
    pub file: Option<String>,
    /// Print only the match count(s).
    pub count_only: bool,
    /// Print fast-forward statistics to stderr after the run.
    pub stats: bool,
    /// Stop after this many matches (0 = unlimited).
    pub limit: usize,
}

/// Usage text.
pub const USAGE: &str = "\
usage: jsonski [OPTIONS] QUERY [QUERY...] [FILE]

Streams JSONPath matches from FILE (or stdin) using bit-parallel
fast-forwarding. The input may be a single JSON record or a sequence of
whitespace/newline-separated records (e.g. JSON Lines).

options:
  -c, --count     print the number of matches instead of the matches
  -s, --stats     print fast-forward statistics to stderr
  -n, --limit N   stop after N matches
  -h, --help      show this help

Multiple QUERY arguments are evaluated together in one streaming pass;
each match line is then prefixed with its query index.

supported JSONPath: $  .name  ['name']  [n]  [m:n]  [*]  .*";

/// Parses argv-style arguments (program name excluded).
///
/// # Errors
///
/// A human-readable message for unknown flags or missing arguments.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut queries = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut count_only = false;
    let mut stats = false;
    let mut limit = 0usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-c" | "--count" => count_only = true,
            "-s" | "--stats" => stats = true,
            "-n" | "--limit" => {
                let v = it.next().ok_or("--limit needs a number")?;
                limit = v.parse().map_err(|_| format!("bad limit: {v}"))?;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown option: {flag}\n\n{USAGE}"));
            }
            _ => positional.push(arg),
        }
    }
    // Every leading positional that parses as a path is a query; at most
    // one trailing non-path positional is the input file.
    for (i, p) in positional.iter().enumerate() {
        if p.starts_with('$') {
            queries.push(p.clone());
        } else if i == positional.len() - 1 {
            return if queries.is_empty() {
                Err(format!("no query given\n\n{USAGE}"))
            } else {
                Ok(Options {
                    queries,
                    file: Some(p.clone()),
                    count_only,
                    stats,
                    limit,
                })
            };
        } else {
            return Err(format!("queries must start with `$`: {p}"));
        }
    }
    if queries.is_empty() {
        return Err(format!("no query given\n\n{USAGE}"));
    }
    Ok(Options {
        queries,
        file: None,
        count_only,
        stats,
        limit,
    })
}

/// Runs the tool over an in-memory input, writing matches to `out`.
/// Returns the per-query match counts.
///
/// # Errors
///
/// Query-compilation, streaming, or I/O errors as strings.
pub fn run(opts: &Options, input: &[u8], out: &mut dyn Write) -> Result<Vec<usize>, String> {
    let spans = jsonski::split_records(input).map_err(|e| e.to_string())?;
    let mut counts = vec![0usize; opts.queries.len()];
    let mut total_stats = jsonski::FastForwardStats::new();
    let mut emitted = 0usize;
    let mut io_error: Option<std::io::Error> = None;
    if opts.queries.len() == 1 {
        let engine = JsonSki::compile(&opts.queries[0]).map_err(|e| e.to_string())?;
        for &(s, e) in &spans {
            if opts.limit > 0 && emitted >= opts.limit {
                break;
            }
            let stats = engine
                .run(&input[s..e], |m| {
                    if (opts.limit == 0 || emitted < opts.limit) && io_error.is_none() {
                        counts[0] += 1;
                        emitted += 1;
                        if !opts.count_only {
                            if let Err(err) =
                                out.write_all(m).and_then(|()| out.write_all(b"\n"))
                            {
                                io_error = Some(err);
                            }
                        }
                    }
                })
                .map_err(|e| e.to_string())?;
            total_stats += stats;
        }
    } else {
        let queries: Vec<&str> = opts.queries.iter().map(|s| s.as_str()).collect();
        let engine = MultiQuery::compile(&queries).map_err(|e| e.to_string())?;
        for &(s, e) in &spans {
            if opts.limit > 0 && emitted >= opts.limit {
                break;
            }
            let stats = engine
                .run(&input[s..e], |i, m| {
                    if (opts.limit == 0 || emitted < opts.limit) && io_error.is_none() {
                        counts[i] += 1;
                        emitted += 1;
                        if !opts.count_only {
                            let line = format!("{i}\t");
                            if let Err(err) = out
                                .write_all(line.as_bytes())
                                .and_then(|()| out.write_all(m))
                                .and_then(|()| out.write_all(b"\n"))
                            {
                                io_error = Some(err);
                            }
                        }
                    }
                })
                .map_err(|e| e.to_string())?;
            total_stats += stats;
        }
    }
    if let Some(err) = io_error {
        return Err(err.to_string());
    }
    if opts.count_only {
        for (q, c) in opts.queries.iter().zip(&counts) {
            writeln!(out, "{c}\t{q}").map_err(|e| e.to_string())?;
        }
    }
    if opts.stats {
        eprintln!("fast-forward: {total_stats}");
    }
    Ok(counts)
}

/// Runs the tool over a streaming reader with bounded memory (used for
/// stdin): records are pulled one at a time via
/// [`jsonski::ChunkedRecords`], so the process never holds the whole stream.
///
/// # Errors
///
/// Query-compilation, streaming, or I/O errors as strings.
pub fn run_reader<R: std::io::Read>(
    opts: &Options,
    reader: R,
    out: &mut dyn Write,
) -> Result<Vec<usize>, String> {
    let queries: Vec<&str> = opts.queries.iter().map(|s| s.as_str()).collect();
    let engine = MultiQuery::compile(&queries).map_err(|e| e.to_string())?;
    let single = opts.queries.len() == 1;
    let mut counts = vec![0usize; opts.queries.len()];
    let mut total_stats = jsonski::FastForwardStats::new();
    let mut emitted = 0usize;
    let mut records = jsonski::ChunkedRecords::new(reader);
    loop {
        let record = match records.next_record() {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(e) => return Err(e.to_string()),
        };
        if opts.limit > 0 && emitted >= opts.limit {
            break;
        }
        let mut io_error: Option<std::io::Error> = None;
        let stats = engine
            .run(record, |i, m| {
                if (opts.limit == 0 || emitted < opts.limit) && io_error.is_none() {
                    counts[i] += 1;
                    emitted += 1;
                    if !opts.count_only {
                        let r = if single {
                            out.write_all(m)
                        } else {
                            out.write_all(format!("{i}\t").as_bytes())
                                .and_then(|()| out.write_all(m))
                        };
                        if let Err(err) = r.and_then(|()| out.write_all(b"\n")) {
                            io_error = Some(err);
                        }
                    }
                }
            })
            .map_err(|e| e.to_string())?;
        if let Some(err) = io_error {
            return Err(err.to_string());
        }
        total_stats += stats;
    }
    if opts.count_only {
        for (q, c) in opts.queries.iter().zip(&counts) {
            writeln!(out, "{c}\t{q}").map_err(|e| e.to_string())?;
        }
    }
    if opts.stats {
        eprintln!("fast-forward: {total_stats}");
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Options, String> {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_query_and_file() {
        let o = args(&["$.a.b", "data.json"]).unwrap();
        assert_eq!(o.queries, vec!["$.a.b"]);
        assert_eq!(o.file.as_deref(), Some("data.json"));
        assert!(!o.count_only);
    }

    #[test]
    fn parses_flags_and_multiple_queries() {
        let o = args(&["-c", "$.a", "$[*].b", "-n", "5", "--stats"]).unwrap();
        assert_eq!(o.queries.len(), 2);
        assert!(o.count_only && o.stats);
        assert_eq!(o.limit, 5);
        assert_eq!(o.file, None);
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(args(&[]).is_err());
        assert!(args(&["--wat"]).is_err());
        assert!(args(&["notapath"]).unwrap_err().contains("no query"));
        assert!(args(&["file.json", "$.a"]).is_err()); // file before query
        assert!(args(&["-n"]).is_err());
        assert!(args(&["-h"]).unwrap_err().contains("usage"));
    }

    #[test]
    fn run_single_query_prints_matches() {
        let o = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, b"{\"a\": 1}\n{\"a\": \"x\"}\n{\"b\": 2}\n", &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n\"x\"\n");
    }

    #[test]
    fn run_count_only() {
        let o = args(&["-c", "$.a"]).unwrap();
        let mut out = Vec::new();
        run(&o, b"{\"a\": 1} {\"a\": 2}", &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "2\t$.a\n");
    }

    #[test]
    fn run_multi_query_prefixes_index() {
        let o = args(&["$.a", "$.b"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, br#"{"a": 1, "b": 2}"#, &mut out).unwrap();
        assert_eq!(counts, vec![1, 1]);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0\t1"));
        assert!(text.contains("1\t2"));
    }

    #[test]
    fn run_respects_limit() {
        let o = args(&["-n", "2", "$[*]"]).unwrap();
        let mut out = Vec::new();
        let counts = run(&o, b"[1, 2, 3, 4]", &mut out).unwrap();
        assert_eq!(counts, vec![2]);
        assert_eq!(out, b"1\n2\n");
    }

    #[test]
    fn run_reports_malformed_input() {
        let o = args(&["$.a"]).unwrap();
        let mut out = Vec::new();
        assert!(run(&o, br#"{"a": [1, 2"#, &mut out).is_err());
    }
}

#[cfg(test)]
mod reader_tests {
    use super::*;

    #[test]
    fn run_reader_matches_run_on_same_input() {
        let input = b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": {\"a\": 3}}\n";
        let o = parse_args(["$.a".to_string()]).unwrap();
        let mut out_mem = Vec::new();
        let c1 = run(&o, input, &mut out_mem).unwrap();
        let mut out_stream = Vec::new();
        let c2 = run_reader(&o, &input[..], &mut out_stream).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(out_mem, out_stream);
    }

    #[test]
    fn run_reader_multi_query() {
        let input = b"{\"a\": 1, \"b\": 2}\n{\"a\": 3}\n";
        let o = parse_args(["$.a".to_string(), "$.b".to_string()]).unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&o, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![2, 1]);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0\t1") && text.contains("1\t2") && text.contains("0\t3"));
    }

    #[test]
    fn run_reader_limit_and_count() {
        let input = b"[1,2,3] [4,5] [6]";
        let o = parse_args(["-c".into(), "-n".into(), "4".into(), "$[*]".into()]).unwrap();
        let mut out = Vec::new();
        let counts = run_reader(&o, &input[..], &mut out).unwrap();
        assert_eq!(counts, vec![4]);
    }

    #[test]
    fn run_reader_propagates_malformed() {
        let o = parse_args(["$.a".to_string()]).unwrap();
        let mut out = Vec::new();
        assert!(run_reader(&o, &b"{\"a\": [1,"[..], &mut out).is_err());
    }
}
