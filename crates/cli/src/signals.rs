//! SIGINT/SIGTERM handling via the self-pipe trick, with no new
//! dependencies.
//!
//! A signal handler may only call async-signal-safe functions, which rules
//! out touching the [`CancellationToken`] (atomics are fine, but the
//! watcher also needs to wake). The classic answer is the self-pipe trick:
//! the handler does nothing but `write` one byte to a pipe, and an
//! ordinary watcher thread blocks in `read` on the other end, translating
//! deliveries into cooperative cancellation:
//!
//! * **first signal** — trip the token; the pipeline drains in-flight
//!   records, flushes a final checkpoint, and the process exits with
//!   [`EXIT_CANCELLED`](crate::EXIT_CANCELLED).
//! * **second signal** — the operator insists; exit immediately with the
//!   same code (work since the last checkpoint is lost, which is exactly
//!   what checkpoints are for).
//!
//! Only the raw `signal`/`pipe`/`read`/`write` symbols from libc are
//! declared here; the container's toolchain has no signal-handling crate
//! and must not gain one.

use std::sync::atomic::{AtomicI32, Ordering};

use jsonski::CancellationToken;

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Write end of the self-pipe, published for the signal handler. `-1`
/// until [`install`] runs.
static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// The handler: one async-signal-safe `write`, nothing else. A full pipe
/// (or a pre-install delivery) drops the byte, which is harmless — the
/// watcher only counts deliveries, it does not interpret them.
extern "C" fn on_signal(_signum: i32) {
    let fd = WRITE_FD.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = 1u8;
        unsafe {
            let _ = write(fd, &raw const byte, 1);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that trip `token` on first delivery
/// and hard-exit with code 130 on the second. Returns `false` (leaving
/// default signal behaviour in place) if the pipe or watcher thread cannot
/// be created.
pub fn install(token: CancellationToken) -> bool {
    let mut fds = [-1i32; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return false;
    }
    let (rd, wr) = (fds[0], fds[1]);
    let watcher = std::thread::Builder::new()
        .name("signal-watcher".to_string())
        .spawn(move || {
            let mut byte = 0u8;
            if unsafe { read(rd, &raw mut byte, 1) } != 1 {
                return;
            }
            token.cancel();
            if unsafe { read(rd, &raw mut byte, 1) } == 1 {
                // The graceful drain was not fast enough for the operator;
                // 128 + SIGINT is the conventional "killed by Ctrl-C" code.
                std::process::exit(i32::from(crate::EXIT_CANCELLED));
            }
        });
    if watcher.is_err() {
        return false;
    }
    WRITE_FD.store(wr, Ordering::Relaxed);
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
    true
}
