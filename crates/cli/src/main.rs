//! `jsonski` — stream JSONPath matches from files or stdin.

use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match jsonski_cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result = match &opts.file {
        Some(path) => match std::fs::read(path) {
            Ok(input) => jsonski_cli::run(&opts, &input, &mut out),
            Err(e) => {
                eprintln!("jsonski: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        // Stdin is processed record by record with bounded memory.
        None => jsonski_cli::run_reader(&opts, std::io::stdin().lock(), &mut out),
    };
    match result {
        Ok(counts) => {
            use std::io::Write;
            let _ = out.flush();
            if counts.iter().all(|&c| c == 0) {
                ExitCode::FAILURE // grep-style: no match -> nonzero
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("jsonski: {msg}");
            ExitCode::from(2)
        }
    }
}
