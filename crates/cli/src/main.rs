//! `jsonski` — stream JSONPath matches from files or stdin.
//!
//! Exit codes (documented in [`jsonski_cli::USAGE`] and the README):
//! `0` success, `1` usage or I/O error, `2` fatal evaluation error under
//! fail-fast, `3` completed but skipped malformed records, `130` cancelled
//! by SIGINT/SIGTERM after a graceful drain.

use std::io::{Read, Write};
use std::process::ExitCode;

use jsonski::CancellationToken;
use jsonski_cli::{CliError, InputIdentity, Options, RunControls, RunReport, USAGE};

fn main() -> ExitCode {
    // `jsonski serve …` is a separate mode with its own flags, signal
    // wiring (the server's drain token), and exit-code mapping.
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        return match jsonski_cli::serve::parse_serve_args(args) {
            Ok(opts) => match jsonski_cli::serve::run_serve(&opts) {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("jsonski: {e}");
                    ExitCode::from(e.exit_code())
                }
            },
            Err(CliError::Help) => {
                let _ = writeln!(std::io::stdout(), "{}", jsonski_cli::serve::SERVE_USAGE);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(e.exit_code())
            }
        };
    }
    let opts = match jsonski_cli::parse_args(args) {
        Ok(o) => o,
        Err(CliError::Help) => {
            // Not println!: piping help through `head` closes stdout early,
            // and an EPIPE must not panic.
            let _ = writeln!(std::io::stdout(), "{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(e.exit_code());
        }
    };
    let mut controls = RunControls::default();
    let token = CancellationToken::new();
    #[cfg(unix)]
    if jsonski_cli::signals::install(token.clone()) {
        controls.cancel = Some(token);
    }
    #[cfg(not(unix))]
    drop(token);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result = run(&opts, &mut controls, &mut out);
    let _ = out.flush();
    match result {
        Ok(report) => ExitCode::from(report.exit_code()),
        Err(e) => {
            eprintln!("jsonski: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(
    opts: &Options,
    controls: &mut RunControls,
    out: &mut dyn Write,
) -> Result<RunReport, CliError> {
    // A checkpointed run must stream (the checkpoint cadence hangs off the
    // pipeline merge), so `--checkpoint` routes file input through the same
    // reader path as stdin instead of the in-memory fast path.
    if opts.checkpoint.is_some() {
        let identity = match &opts.file {
            Some(path) => InputIdentity::of_file(std::path::Path::new(path))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?,
            None => InputIdentity::unknown(),
        };
        let plan = jsonski_cli::prepare_checkpoint(opts, &identity)?
            .expect("--checkpoint was given, so a plan exists");
        if plan.complete {
            eprintln!("jsonski: checkpoint marks this run complete; nothing to resume");
            return Ok(RunReport {
                counts: vec![0; opts.queries.len()],
                skipped: 0,
                cancelled: false,
            });
        }
        let start = plan.start_offset;
        controls.checkpoint = Some(plan.setup);
        return match &opts.file {
            Some(path) => {
                let mut file =
                    std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                discard_prefix(&mut file, start)?;
                jsonski_cli::run_reader_ctl(opts, file, out, controls)
            }
            None => {
                let mut stdin = std::io::stdin().lock();
                discard_prefix(&mut stdin, start)?;
                jsonski_cli::run_reader_ctl(opts, stdin, out, controls)
            }
        };
    }
    match &opts.file {
        Some(path) => {
            let input = std::fs::read(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let outcome = jsonski_cli::run_ctl(opts, &input, out, controls)?;
            Ok(RunReport {
                counts: outcome.counts,
                skipped: outcome.skipped,
                cancelled: outcome.cancelled,
            })
        }
        // Stdin is processed record by record with bounded memory.
        None => jsonski_cli::run_reader_ctl(opts, std::io::stdin().lock(), out, controls),
    }
}

/// Skips the first `n` bytes of `reader` (the committed prefix of a
/// resumed run). Works on any reader, so stdin resumes too — the upstream
/// producer replays the stream and the committed prefix is discarded here.
fn discard_prefix<R: std::io::Read>(reader: &mut R, n: u64) -> Result<(), CliError> {
    let copied = std::io::copy(&mut reader.by_ref().take(n), &mut std::io::sink())
        .map_err(|e| CliError::Io(e.to_string()))?;
    if copied != n {
        return Err(CliError::Io(format!(
            "input ended at byte {copied} while resuming from checkpoint offset {n}; \
             is this the same input?"
        )));
    }
    Ok(())
}
