//! The seven experiment scenarios (one per paper table/figure).

use std::time::Duration;

use datagen::{Dataset, GenConfig};
use jsonpath::Path;

use crate::engines::{all_engines, ParallelPisonEngine};
use crate::parallel::{count_records_parallel, SegmentEngine, SegmentedRunner};
use crate::report::{mib, pct, secs, time, Table};
use crate::{alloc, engines::Engine, seed, target_bytes, thread_count};

/// One dataset/query pair of the paper's Table 5.
#[derive(Clone, Debug)]
pub struct Case {
    /// The dataset the query runs on.
    pub dataset: Dataset,
    /// Query id (e.g. `TT1`).
    pub id: &'static str,
    /// The JSONPath text.
    pub query: &'static str,
    /// The compiled path.
    pub path: Path,
    /// Whether the query only applies to the single-large-record form.
    pub large_only: bool,
}

/// All twelve cases in the paper's order.
pub fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    for ds in Dataset::all() {
        for (id, query) in ds.queries() {
            out.push(Case {
                dataset: ds,
                id,
                query,
                path: query.parse().expect("paper query parses"),
                large_only: ds.large_only_queries().contains(&id),
            });
        }
    }
    out
}

fn gen_cfg() -> GenConfig {
    GenConfig {
        target_bytes: target_bytes(),
        seed: seed(),
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "(datasets ~{} MiB each; REPRO_MB to change; seed {})\n",
        target_bytes() / (1024 * 1024),
        seed()
    );
}

/// Table 4: structural statistics of the synthetic datasets, next to the
/// paper's (1 GB-scale) figures for shape comparison.
pub fn table4() {
    banner("Table 4: dataset statistics (synthetic)");
    // Paper values: (#objects, #arrays, #attrs, #prims, #records, depth).
    let paper: &[(&str, &str)] = &[
        (
            "TT",
            "2.39M obj, 2.29M ary, 26.5M attr, 24.3M prim, 150K sub, depth 11",
        ),
        (
            "BB",
            "1.91M obj, 4.88M ary, 40.7M attr, 35.8M prim, 230K sub, depth 7",
        ),
        (
            "GMD",
            "10.3M obj, 43K ary, 29.0M attr, 21.0M prim, 4.44K sub, depth 9",
        ),
        (
            "NSPL",
            "613 obj, 3.50M ary, 1.66K attr, 84.2M prim, 1.74M sub, depth 9",
        ),
        (
            "WM",
            "333K obj, 34K ary, 8.19M attr, 9.92K prim, 275K sub, depth 4",
        ),
        (
            "WP",
            "17.3M obj, 6.53M ary, 53.2M attr, 35.0M prim, 137K sub, depth 12",
        ),
    ];
    let mut t = Table::new(&[
        "Data", "MiB", "#objects", "#arrays", "#attr", "#prim", "#sub", "depth",
    ]);
    for ds in Dataset::all() {
        let large = ds.generate_large(&gen_cfg());
        let st = datagen::structural_stats(large.bytes());
        let small = ds.generate_small(&gen_cfg());
        t.row(vec![
            ds.name().into(),
            mib(large.bytes().len()),
            st.objects.to_string(),
            st.arrays.to_string(),
            st.attributes.to_string(),
            st.primitives.to_string(),
            small.records().len().to_string(),
            st.depth.to_string(),
        ]);
    }
    t.print();
    println!("\nPaper (1 GB scale), for shape comparison:");
    for (name, desc) in paper {
        println!("  {name:5} {desc}");
    }
    // Table 5 companion: per-query match counts on the synthetic data,
    // validated across all engines by fig10.
    println!("\nTable 5 companion: match counts on the synthetic datasets");
    let mut t5 = Table::new(&[
        "ID",
        "Query",
        "#matches (synthetic)",
        "#matches (paper, 1GB)",
    ]);
    let paper_matches: &[(&str, &str)] = &[
        ("TT1", "88,881"),
        ("TT2", "150,135"),
        ("BB1", "459,332"),
        ("BB2", "8,857"),
        ("GMD1", "1,716,752"),
        ("GMD2", "270"),
        ("NSPL1", "44"),
        ("NSPL2", "3,509,764"),
        ("WM1", "15,892"),
        ("WM2", "272,499"),
        ("WP1", "15,603"),
        ("WP2", "35"),
    ];
    for case in cases() {
        let data = case.dataset.generate_large(&gen_cfg());
        let engine = jsonski::JsonSki::new(case.path.clone());
        let n = engine.count(data.bytes()).expect("valid data");
        let paper_n = paper_matches
            .iter()
            .find(|(id, _)| *id == case.id)
            .map(|(_, n)| *n)
            .unwrap_or("-");
        t5.row(vec![
            case.id.into(),
            case.query.into(),
            n.to_string(),
            paper_n.into(),
        ]);
    }
    t5.print();
}

/// Figure 10: performance on a single large record, all engines plus the
/// speculative-parallel JPStream(16)/Pison(16) configurations.
pub fn fig10() {
    banner("Figure 10: single large record, total execution time (s)");
    let threads = thread_count();
    let mut t = Table::new(&[
        "Query",
        "#matches",
        "JPStream",
        "RapidJSON",
        "simdjson",
        "Pison",
        "JSONSki",
        &format!("JPStream({threads})"),
        &format!("Pison({threads})"),
        &format!("JSONSki({threads})*"),
    ]);
    let mut speedup_jp = Vec::new();
    let mut speedup_simd = Vec::new();
    let mut speedup_pison = Vec::new();
    for case in cases() {
        let data = case.dataset.generate_large(&gen_cfg());
        let record = data.bytes();
        let engines = all_engines(&case.path);
        let mut times = Vec::new();
        let mut counts = Vec::new();
        for e in &engines {
            let (d, n) = time(|| e.count(record).expect("engines accept generated data"));
            times.push(d);
            counts.push(n);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{}: engines disagree: {counts:?}",
            case.id
        );
        // JPStream(16): segmented speculative runner (serial fallback when
        // the query exposes no array to split at, e.g. NSPL1).
        let (jp16, n_jp16) = match SegmentedRunner::new(&case.path) {
            Some(runner) => {
                let (d, n) = time(|| runner.count(record, threads).expect("valid"));
                (d, n)
            }
            None => {
                let e = jpstream::JpStream::new(case.path.clone());
                time(|| e.count(record).expect("valid"))
            }
        };
        assert_eq!(
            n_jp16, counts[0],
            "{}: JPStream({threads}) diverges",
            case.id
        );
        // Pison(16): speculative parallel index construction.
        let p16 = ParallelPisonEngine::new(&case.path, threads);
        let (pison16, n_p16) = time(|| p16.count(record).expect("valid"));
        assert_eq!(n_p16, counts[0], "{}: Pison({threads}) diverges", case.id);
        // JSONSki(16): the speculation the paper lists as future work
        // ("we are not aware of any parts of its design prevent it from
        // adopting speculation optimization").
        let (ski16, n_s16) = match SegmentedRunner::with_engine(&case.path, SegmentEngine::JsonSki)
        {
            Some(runner) => time(|| runner.count(record, threads).expect("valid")),
            None => {
                let e = jsonski::JsonSki::new(case.path.clone());
                time(|| e.count(record).expect("valid"))
            }
        };
        assert_eq!(n_s16, counts[0], "{}: JSONSki({threads}) diverges", case.id);
        let ski = times[4];
        speedup_jp.push(times[0].as_secs_f64() / ski.as_secs_f64());
        speedup_simd.push(times[2].as_secs_f64() / ski.as_secs_f64());
        speedup_pison.push(times[3].as_secs_f64() / ski.as_secs_f64());
        t.row(vec![
            case.id.into(),
            counts[0].to_string(),
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            secs(times[3]),
            secs(ski),
            secs(jp16),
            secs(pison16),
            secs(ski16),
        ]);
    }
    t.print();
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!("\n* JSONSki(N) = segmented speculative parallelism, the paper's stated future work.");
    println!("Geomean speedup of JSONSki (serial): {:.1}x over JPStream (paper: 12.3x), {:.1}x over simdjson (paper: 4.8x), {:.1}x over Pison (paper: 3.1x)",
        gm(&speedup_jp), gm(&speedup_simd), gm(&speedup_pison));
}

/// Shared small-records runner for Figures 11 and 12.
fn small_records(threads: usize) {
    let mut t = Table::new(&[
        "Query",
        "#matches",
        "JPStream",
        "RapidJSON",
        "simdjson",
        "Pison",
        "JSONSki",
    ]);
    let mut per_engine_totals = [Duration::ZERO; 5];
    for case in cases() {
        if case.large_only {
            continue; // the paper excludes NSPL1 and WP2 here
        }
        let data = case.dataset.generate_small(&gen_cfg());
        let engines = all_engines(&case.path);
        let mut row = vec![case.id.to_string(), String::new()];
        let mut first_count = None;
        for (i, e) in engines.iter().enumerate() {
            let (d, n) = time(|| {
                count_records_parallel(e.as_ref(), data.bytes(), data.records(), threads)
                    .expect("engines accept generated data")
            });
            per_engine_totals[i] += d;
            match first_count {
                None => first_count = Some(n),
                Some(c) => assert_eq!(c, n, "{}: {} diverges", case.id, e.name()),
            }
            row.push(secs(d));
        }
        row[1] = first_count.unwrap().to_string();
        t.row(row);
    }
    t.print();
    println!(
        "\nTotal across queries (s): JPStream {} | RapidJSON {} | simdjson {} | Pison {} | JSONSki {}",
        secs(per_engine_totals[0]),
        secs(per_engine_totals[1]),
        secs(per_engine_totals[2]),
        secs(per_engine_totals[3]),
        secs(per_engine_totals[4]),
    );
}

/// Figure 11: sequential performance on a series of small records.
pub fn fig11() {
    banner("Figure 11: small records, single thread, time (s)");
    small_records(1);
}

/// Figure 12: parallel performance on a series of small records.
pub fn fig12() {
    let threads = thread_count();
    banner(&format!(
        "Figure 12: small records, {threads} threads, time (s)"
    ));
    println!(
        "NOTE: this host exposes {} CPU core(s); with a single core the\n\
         thread pool is functionally exercised but wall-clock speedup over\n\
         Figure 11 cannot manifest (paper machine: 16 cores).\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    small_records(threads);
}

/// Figure 13: peak memory footprint on a single large record.
///
/// Requires the counting allocator to be installed (the `fig13` binary does
/// this); without it all deltas read as zero.
pub fn fig13() {
    banner("Figure 13: peak extra heap over the input buffer (MiB), large record");
    let mut t = Table::new(&[
        "Query",
        "input",
        "JPStream",
        "RapidJSON",
        "simdjson",
        "Pison",
        "JSONSki",
    ]);
    for case in cases() {
        let data = case.dataset.generate_large(&gen_cfg());
        let record = data.bytes();
        let mut row = vec![case.id.to_string(), mib(record.len())];
        let engines = all_engines(&case.path);
        for e in &engines {
            alloc::reset_peak();
            let before = alloc::current_bytes();
            let n = e.count(record).expect("valid");
            std::hint::black_box(n);
            let peak = alloc::peak_bytes().saturating_sub(before);
            row.push(mib(peak));
        }
        t.row(row);
    }
    t.print();
    println!(
        "\n(The streaming engines' extra heap should be ~0: they keep only\n\
         cursor state. The paper's Figure 13 reports total footprints of\n\
         ~1 GB for streaming vs 2-3 GB for the preprocessing engines at\n\
         1 GB input — i.e. 1-2 GB of *extra* heap, matching this table's\n\
         shape at the scaled-down input size.)"
    );
}

/// Figure 14: input-size scalability on query BB1.
pub fn fig14() {
    banner("Figure 14: scalability with input size (BB1), time (s)");
    let case = cases().into_iter().find(|c| c.id == "BB1").expect("BB1");
    let base = target_bytes();
    let mut t = Table::new(&[
        "MiB",
        "JPStream",
        "RapidJSON",
        "simdjson",
        "Pison",
        "JSONSki",
    ]);
    for mult in [1usize, 2, 4, 8] {
        let cfg = GenConfig {
            target_bytes: base * mult / 4,
            seed: seed(),
        };
        let data = case.dataset.generate_large(&cfg);
        let record = data.bytes();
        let mut row = vec![mib(record.len())];
        for e in all_engines(&case.path) {
            let (d, n) = time(|| e.count(record).expect("valid"));
            std::hint::black_box(n);
            row.push(secs(d));
        }
        t.row(row);
    }
    t.print();
    println!(
        "\n(Execution time should grow linearly for every engine; at the\n\
         paper's 72 GB point the preprocessing engines exhaust memory while\n\
         the streaming engines keep only the input buffer.)"
    );
}

/// Table 6: fast-forward ratios by function group.
pub fn table6() {
    banner("Table 6: fast-forward ratios by group, large record");
    let paper_overall: &[(&str, &str)] = &[
        ("TT1", "99.44%"),
        ("TT2", "99.07%"),
        ("BB1", "98.49%"),
        ("BB2", "97.99%"),
        ("GMD1", "97.41%"),
        ("GMD2", "99.99%"),
        ("NSPL1", "99.99%"),
        ("NSPL2", "95.94%"),
        ("WM1", "99.77%"),
        ("WM2", "98.79%"),
        ("WP1", "99.33%"),
        ("WP2", "99.99%"),
    ];
    let mut t = Table::new(&[
        "Query",
        "G1",
        "G2",
        "G3",
        "G4",
        "G5",
        "Overall",
        "Paper overall",
    ]);
    for case in cases() {
        let data = case.dataset.generate_large(&gen_cfg());
        let ski = jsonski::JsonSki::new(case.path.clone());
        // The table is derived from the live metrics registry — the same
        // counters `--metrics` exposes — not from a side estimate.
        let metrics = jsonski::Metrics::new();
        let mut sink = jsonski::CountSink::default();
        let outcome =
            jsonski::Evaluate::evaluate_metered(&ski, data.bytes(), 0, &mut sink, &metrics);
        assert!(
            matches!(outcome, jsonski::RecordOutcome::Complete { .. }),
            "{}: generated record failed to evaluate: {outcome:?}",
            case.id
        );
        let snap = metrics.snapshot();
        // Cross-check: the legacy streaming-pass estimate must agree with
        // the live counters to within one percentage point.
        let est = ski
            .run(data.bytes(), |_| {})
            .expect("valid")
            .overall_ratio();
        let live = snap.overall_ff_ratio();
        assert!(
            (est - live).abs() <= 0.01,
            "{}: live ff ratio {live:.4} diverges from estimate {est:.4}",
            case.id
        );
        use jsonski::Group::*;
        let paper = paper_overall
            .iter()
            .find(|(id, _)| *id == case.id)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        t.row(vec![
            case.id.into(),
            pct(snap.ff_ratio(G1)),
            pct(snap.ff_ratio(G2)),
            pct(snap.ff_ratio(G3)),
            pct(snap.ff_ratio(G4)),
            pct(snap.ff_ratio(G5)),
            pct(live),
            paper.into(),
        ]);
    }
    t.print();
}

/// Quick self-check used by integration tests: every engine agrees on every
/// query over small versions of every dataset.
pub fn verify_engine_agreement(bytes_per_dataset: usize) {
    let cfg = GenConfig {
        target_bytes: bytes_per_dataset,
        seed: seed(),
    };
    for case in cases() {
        let data = case.dataset.generate_large(&cfg);
        let record = data.bytes();
        let reference = domparser::DomQuery::new(case.path.clone())
            .count(record)
            .expect("valid");
        for e in [
            Box::new(jpstream::JpStream::new(case.path.clone())) as Box<dyn Engine>,
            Box::new(tapeparser::TapeQuery::new(case.path.clone())),
            Box::new(pison::PisonQuery::new(case.path.clone())),
            Box::new(jsonski::JsonSki::new(case.path.clone())),
        ] {
            assert_eq!(
                e.count(record).expect("valid"),
                reference,
                "{}: {} disagrees with the DOM reference",
                case.id,
                e.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_cases_compile() {
        let cs = cases();
        assert_eq!(cs.len(), 12);
        assert_eq!(cs.iter().filter(|c| c.large_only).count(), 2);
    }

    #[test]
    fn engines_agree_on_all_cases_small_scale() {
        verify_engine_agreement(96 * 1024);
    }

    #[test]
    fn segmented_runner_agrees_on_every_splittable_case() {
        let cfg = GenConfig {
            target_bytes: 64 * 1024,
            seed: 99,
        };
        for case in cases() {
            let Some(runner) = SegmentedRunner::new(&case.path) else {
                continue;
            };
            let data = case.dataset.generate_large(&cfg);
            let serial = jsonski::JsonSki::new(case.path.clone())
                .count(data.bytes())
                .expect("valid");
            let parallel = runner.count(data.bytes(), 4).expect("valid");
            assert_eq!(serial, parallel, "{}", case.id);
        }
    }
}
