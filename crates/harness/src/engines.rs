//! The [`Engine`] abstraction: one record in, a match count out, for all
//! five systems under test (paper Table 2).

use jsonpath::Path;

/// Identifies one of the five evaluated systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Character-by-character streaming (dual-stack automaton).
    JpStream,
    /// Conventional DOM parse tree + traversal.
    RapidJsonClass,
    /// Two-stage SIMD tape parser.
    SimdJsonClass,
    /// Leveled-bitmap structural index.
    PisonClass,
    /// Streaming with bit-parallel fast-forwarding (this paper).
    JsonSki,
}

impl EngineKind {
    /// Display name used in the result tables (matching the paper's).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::JpStream => "JPStream",
            EngineKind::RapidJsonClass => "RapidJSON",
            EngineKind::SimdJsonClass => "simdjson",
            EngineKind::PisonClass => "Pison",
            EngineKind::JsonSki => "JSONSki",
        }
    }

    /// All five engines in the paper's presentation order.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::JpStream,
            EngineKind::RapidJsonClass,
            EngineKind::SimdJsonClass,
            EngineKind::PisonClass,
            EngineKind::JsonSki,
        ]
    }
}

/// A query engine bound to a compiled path: feeds on one record at a time.
///
/// For the preprocessing engines (`RapidJSON`, `simdjson`, `Pison`),
/// [`Engine::count`] includes both the preprocessing and the querying, as in
/// the paper ("the total execution time ... includes preprocessing and
/// querying time").
pub trait Engine: Sync {
    /// The engine's display name.
    fn name(&self) -> &'static str;

    /// Processes one record and returns the number of matches.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed input.
    fn count(&self, record: &[u8]) -> Result<usize, String>;
}

/// JSONSki: streaming with bit-parallel fast-forwarding.
pub struct JsonSkiEngine {
    inner: jsonski::JsonSki,
}

impl JsonSkiEngine {
    /// Binds the engine to `path`.
    pub fn new(path: &Path) -> Self {
        JsonSkiEngine {
            inner: jsonski::JsonSki::new(path.clone()),
        }
    }

    /// Access to the underlying engine (for the Table 6 statistics).
    pub fn inner(&self) -> &jsonski::JsonSki {
        &self.inner
    }
}

impl Engine for JsonSkiEngine {
    fn name(&self) -> &'static str {
        EngineKind::JsonSki.name()
    }

    fn count(&self, record: &[u8]) -> Result<usize, String> {
        self.inner.count(record).map_err(|e| e.to_string())
    }
}

/// JPStream-class character-at-a-time streaming.
pub struct JpStreamEngine {
    inner: jpstream::JpStream,
}

impl JpStreamEngine {
    /// Binds the engine to `path`.
    pub fn new(path: &Path) -> Self {
        JpStreamEngine {
            inner: jpstream::JpStream::new(path.clone()),
        }
    }
}

impl Engine for JpStreamEngine {
    fn name(&self) -> &'static str {
        EngineKind::JpStream.name()
    }

    fn count(&self, record: &[u8]) -> Result<usize, String> {
        self.inner.count(record).map_err(|e| e.to_string())
    }
}

/// RapidJSON-class DOM parse + tree walk.
pub struct DomEngine {
    path: Path,
}

impl DomEngine {
    /// Binds the engine to `path`.
    pub fn new(path: &Path) -> Self {
        DomEngine { path: path.clone() }
    }
}

impl Engine for DomEngine {
    fn name(&self) -> &'static str {
        EngineKind::RapidJsonClass.name()
    }

    fn count(&self, record: &[u8]) -> Result<usize, String> {
        let dom = domparser::Dom::parse(record).map_err(|e| e.to_string())?;
        Ok(dom.count(&self.path))
    }
}

/// simdjson-class two-stage tape parser.
pub struct TapeEngine {
    path: Path,
}

impl TapeEngine {
    /// Binds the engine to `path`.
    pub fn new(path: &Path) -> Self {
        TapeEngine { path: path.clone() }
    }
}

impl Engine for TapeEngine {
    fn name(&self) -> &'static str {
        EngineKind::SimdJsonClass.name()
    }

    fn count(&self, record: &[u8]) -> Result<usize, String> {
        let tape = tapeparser::Tape::build(record).map_err(|e| e.to_string())?;
        Ok(tape.count(&self.path))
    }
}

/// Pison-class leveled-bitmap index; `threads > 1` uses the speculative
/// parallel builder (the paper's "Pison(16)").
pub struct PisonEngine {
    path: Path,
    threads: usize,
}

impl PisonEngine {
    /// Serial index construction.
    pub fn new(path: &Path) -> Self {
        PisonEngine {
            path: path.clone(),
            threads: 1,
        }
    }

    /// Speculative parallel index construction with `threads` workers.
    pub fn parallel(path: &Path, threads: usize) -> Self {
        PisonEngine {
            path: path.clone(),
            threads,
        }
    }
}

impl Engine for PisonEngine {
    fn name(&self) -> &'static str {
        EngineKind::PisonClass.name()
    }

    fn count(&self, record: &[u8]) -> Result<usize, String> {
        let levels = self.path.len().max(1);
        let index = if self.threads > 1 {
            pison::build_parallel(record, levels, self.threads)
        } else {
            pison::LeveledIndex::build(record, levels)
        };
        Ok(index.count(&self.path))
    }
}

/// Builds all five engines (serial configurations) for `path`.
pub fn all_engines(path: &Path) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(JpStreamEngine::new(path)),
        Box::new(DomEngine::new(path)),
        Box::new(TapeEngine::new(path)),
        Box::new(PisonEngine::new(path)),
        Box::new(JsonSkiEngine::new(path)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[u8] = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]},
                               {"cp": [{"id": 4}, {"id": 5}, {"id": 6}, {"id": 7}]}]}"#;

    #[test]
    fn all_engines_agree_on_sample() {
        let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
        let counts: Vec<usize> = all_engines(&path)
            .iter()
            .map(|e| e.count(SAMPLE).unwrap())
            .collect();
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn parallel_pison_agrees() {
        let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
        let e = PisonEngine::parallel(&path, 4);
        assert_eq!(e.count(SAMPLE).unwrap(), 4);
    }

    #[test]
    fn names_match_paper() {
        let path: Path = "$.a".parse().unwrap();
        let names: Vec<&str> = all_engines(&path).iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec!["JPStream", "RapidJSON", "simdjson", "Pison", "JSONSki"]
        );
    }

    #[test]
    fn engines_report_errors_on_truncated_input() {
        let path: Path = "$.a.b".parse().unwrap();
        for e in all_engines(&path) {
            if e.name() == "Pison" {
                // The leveled index performs no validation beyond what the
                // query touches; truncated input yields zero/garbage counts
                // rather than an error (true to the original tool's design).
                continue;
            }
            let res = e.count(br#"{"a": {"b": [1, 2"#);
            assert!(res.is_err(), "{} accepted truncated input", e.name());
        }
    }
}
