//! The engine abstraction for the five systems under test (paper Table 2).
//!
//! Since the unified sink-based evaluation API, the abstraction IS
//! [`jsonski::Evaluate`] (re-exported here as [`Engine`]): every engine
//! crate implements it natively, errors are the typed
//! [`jsonski::EngineError`] instead of strings, and `count` is a default
//! method derived from the sink-based `evaluate`. This module keeps the
//! [`EngineKind`] enumeration, the [`all_engines`] constructor, and the
//! harness-only [`ParallelPisonEngine`] configuration (the paper's
//! "Pison(16)" bar).

use jsonpath::Path;

pub use jsonski::{EngineError, Evaluate as Engine};

/// Identifies one of the five evaluated systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Character-by-character streaming (dual-stack automaton).
    JpStream,
    /// Conventional DOM parse tree + traversal.
    RapidJsonClass,
    /// Two-stage SIMD tape parser.
    SimdJsonClass,
    /// Leveled-bitmap structural index.
    PisonClass,
    /// Streaming with bit-parallel fast-forwarding (this paper).
    JsonSki,
}

impl EngineKind {
    /// Display name used in the result tables (matching the paper's).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::JpStream => "JPStream",
            EngineKind::RapidJsonClass => "RapidJSON",
            EngineKind::SimdJsonClass => "simdjson",
            EngineKind::PisonClass => "Pison",
            EngineKind::JsonSki => "JSONSki",
        }
    }

    /// All five engines in the paper's presentation order.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::JpStream,
            EngineKind::RapidJsonClass,
            EngineKind::SimdJsonClass,
            EngineKind::PisonClass,
            EngineKind::JsonSki,
        ]
    }

    /// Builds this engine bound to `path`.
    pub fn build(self, path: &Path) -> Box<dyn Engine> {
        match self {
            EngineKind::JpStream => Box::new(jpstream::JpStream::new(path.clone())),
            EngineKind::RapidJsonClass => Box::new(domparser::DomQuery::new(path.clone())),
            EngineKind::SimdJsonClass => Box::new(tapeparser::TapeQuery::new(path.clone())),
            EngineKind::PisonClass => Box::new(pison::PisonQuery::new(path.clone())),
            EngineKind::JsonSki => Box::new(jsonski::JsonSki::new(path.clone())),
        }
    }
}

/// Builds all five engines (serial configurations) for `path`, in the
/// paper's presentation order.
pub fn all_engines(path: &Path) -> Vec<Box<dyn Engine>> {
    EngineKind::all()
        .into_iter()
        .map(|k| k.build(path))
        .collect()
}

/// Pison with *speculative parallel* index construction — the paper's
/// "Pison(16)" configuration. Harness-only: like the original Pison it
/// assumes well-formed input (no validation pass), so its timings stay
/// comparable; use [`pison::PisonQuery`] for mixed-quality streams.
pub struct ParallelPisonEngine {
    path: Path,
    threads: usize,
}

impl ParallelPisonEngine {
    /// Speculative parallel index construction with `threads` workers.
    pub fn new(path: &Path, threads: usize) -> Self {
        ParallelPisonEngine {
            path: path.clone(),
            threads,
        }
    }
}

impl Engine for ParallelPisonEngine {
    fn name(&self) -> &'static str {
        EngineKind::PisonClass.name()
    }

    fn evaluate(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
    ) -> jsonski::RecordOutcome {
        let levels = self.path.len().max(1);
        let index = pison::build_parallel(record, levels, self.threads);
        let mut matches = 0usize;
        for m in index.query(&self.path) {
            matches += 1;
            if sink
                .on_match(jsonski::Match::from_slice(record_idx, record, m))
                .is_break()
            {
                return jsonski::RecordOutcome::Stopped { matches };
            }
        }
        jsonski::RecordOutcome::Complete { matches }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[u8] = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]},
                               {"cp": [{"id": 4}, {"id": 5}, {"id": 6}, {"id": 7}]}]}"#;

    #[test]
    fn all_engines_agree_on_sample() {
        let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
        let counts: Vec<usize> = all_engines(&path)
            .iter()
            .map(|e| e.count(SAMPLE).unwrap())
            .collect();
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn parallel_pison_agrees() {
        let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
        let e = ParallelPisonEngine::new(&path, 4);
        assert_eq!(e.count(SAMPLE).unwrap(), 4);
    }

    #[test]
    fn names_match_paper() {
        let path: Path = "$.a".parse().unwrap();
        let names: Vec<&str> = all_engines(&path).iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec!["JPStream", "RapidJSON", "simdjson", "Pison", "JSONSki"]
        );
    }

    #[test]
    fn engines_report_typed_errors_on_truncated_input() {
        let path: Path = "$.a.b".parse().unwrap();
        for e in all_engines(&path) {
            let res = e.count(br#"{"a": {"b": [1, 2"#);
            assert!(res.is_err(), "{} accepted truncated input", e.name());
        }
    }

    #[test]
    fn engines_report_typed_errors_on_missing_colon() {
        // `{"a" 1}` is balanced, so even index-based engines must diagnose
        // it (Pison via its explicit validation pass).
        let path: Path = "$.a".parse().unwrap();
        for e in all_engines(&path) {
            let res = e.count(br#"{"a" 1}"#);
            assert!(res.is_err(), "{} accepted a missing colon", e.name());
        }
    }
}
