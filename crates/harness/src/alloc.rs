//! A counting global allocator for the memory-footprint figure (Figure 13).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks current and peak live bytes.
///
/// Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            bump(new_size);
        }
        p
    }
}

fn bump(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Lock-free peak update.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current level (call before the measured region).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests exercise the counters directly; the allocator is
    // only installed as `#[global_allocator]` in the harness binaries.
    #[test]
    fn peak_tracks_monotonic_max() {
        reset_peak();
        let before = peak_bytes();
        bump(1000);
        assert!(peak_bytes() >= before + 1000);
        CURRENT.fetch_sub(1000, std::sync::atomic::Ordering::Relaxed);
        let after_free = peak_bytes();
        assert!(after_free >= before + 1000); // peak does not shrink
        reset_peak();
        assert!(peak_bytes() <= after_free);
    }
}
