//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;
use std::time::Duration;

/// A simple aligned-column table printer.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<w$}", c, w = widths[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let sep: Vec<String> = (0..cols).map(|i| "-".repeat(widths[i])).collect();
        line(&sep, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration as seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a byte count as MiB.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// A timing request that cannot produce a measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingError {
    /// `reps` was zero: there is no minimum of an empty sample.
    ZeroReps,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::ZeroReps => write!(f, "time_min needs at least one repetition"),
        }
    }
}

impl std::error::Error for TimingError {}

/// Runs `f` `reps` times and returns the minimum duration with the last
/// result (minimum-of-N is the conventional noise filter for wall-clock
/// micro-measurements).
///
/// # Errors
///
/// [`TimingError::ZeroReps`] when `reps` is zero — an empty sample has no
/// minimum, and a measurement harness must diagnose a misconfigured rep
/// count rather than panic mid-experiment.
pub fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> Result<(Duration, R), TimingError> {
    let mut measured: Option<(Duration, R)> = None;
    for _ in 0..reps {
        let (d, r) = time(&mut f);
        let best = measured.map_or(d, |(b, _)| b.min(d));
        measured = Some((best, r));
    }
    measured.ok_or(TimingError::ZeroReps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
        assert_eq!(mib(1024 * 1024), "1.0");
        assert_eq!(pct(0.9944), "99.44%");
    }

    #[test]
    fn time_min_takes_minimum() {
        let mut calls = 0;
        let (d, _) = time_min(3, || {
            calls += 1;
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn time_min_zero_reps_is_a_typed_error_not_a_panic() {
        let mut calls = 0;
        let err = time_min(0, || {
            calls += 1;
        })
        .unwrap_err();
        assert_eq!(calls, 0);
        assert_eq!(err, TimingError::ZeroReps);
        assert!(err.to_string().contains("at least one repetition"));
    }
}
