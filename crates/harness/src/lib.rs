//! Experiment harness regenerating every table and figure of the JSONSki
//! paper's evaluation (Section 5).
//!
//! Binaries (run with `--release`; set `REPRO_MB=<n>` to scale the generated
//! datasets, default 8 MiB each):
//!
//! | Binary  | Paper artifact | What it reports |
//! |---------|----------------|-----------------|
//! | `table4` | Table 4 | structural statistics of the synthetic datasets |
//! | `fig10` | Figure 10 | single large record: total time per engine (incl. JPStream(16)/Pison(16) parallel variants) |
//! | `fig11` | Figure 11 | sequence of small records, one thread |
//! | `fig12` | Figure 12 | sequence of small records, 16 threads |
//! | `fig13` | Figure 13 | peak memory footprint per engine |
//! | `fig14` | Figure 14 | input-size scalability on BB1 |
//! | `table6` | Table 6 | fast-forward ratio per function group |
//!
//! The library half hosts the pieces the binaries share: the [`Engine`]
//! abstraction over all five systems, the counting allocator for the memory
//! figure, the thread-pool runner for the small-records scenario, and the
//! chunk-parallel large-record runner standing in for JPStream's
//! speculation (see `DESIGN.md` for the substitution note).

#![deny(missing_docs)]

pub mod alloc;
pub mod engines;
pub mod parallel;
pub mod report;
pub mod scenario;

pub use engines::{all_engines, Engine, EngineError, EngineKind, ParallelPisonEngine};

/// Returns the dataset scale in bytes, from `REPRO_MB` (default 8 MiB).
pub fn target_bytes() -> usize {
    std::env::var("REPRO_MB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(8)
        * 1024
        * 1024
}

/// Number of worker threads for the parallel scenarios (the paper uses 16;
/// override with `REPRO_THREADS`).
pub fn thread_count() -> usize {
    std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(16)
}

/// RNG seed for dataset generation (override with `REPRO_SEED`).
pub fn seed() -> u64 {
    std::env::var("REPRO_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5eed_0001)
}
