//! Parallel runners for the two scenarios of Section 5.1.
//!
//! * [`count_records_parallel`] — the small-records scenario: "each thread
//!   is assigned to process one small record each time" (Figure 12).
//! * [`SegmentedRunner`] — the single-large-record scenario for engines with
//!   speculative parallelism (JPStream(16) in Figure 10): the dominant
//!   top-level array is located, its element boundaries are discovered with
//!   Pison's speculative chunk-parallel index, and the elements are streamed
//!   in parallel with the residual query. This reproduces the *mechanism
//!   class* (speculative parallel processing of one record); see DESIGN.md.

use std::sync::atomic::{AtomicUsize, Ordering};

use jsonpath::{Path, Step};

use crate::engines::Engine;

/// Counts matches across `records`, fanning the records out to `threads`
/// workers (each worker takes the next unprocessed record — the paper's
/// task-level parallelism for small records).
///
/// # Errors
///
/// The first per-record error encountered, if any.
pub fn count_records_parallel(
    engine: &dyn Engine,
    bytes: &[u8],
    records: &[(usize, usize)],
    threads: usize,
) -> Result<usize, String> {
    if threads <= 1 {
        let mut total = 0;
        for &(s, e) in records {
            total += engine.count(&bytes[s..e])?;
        }
        return Ok(total);
    }
    let next = AtomicUsize::new(0);
    let result = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| -> Result<usize, String> {
                    let mut local = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= records.len() {
                            return Ok(local);
                        }
                        let (s, e) = records[i];
                        local += engine.count(&bytes[s..e])?;
                    }
                })
            })
            .collect();
        let mut total = 0usize;
        for h in handles {
            total += h.join().unwrap()?;
        }
        Ok(total)
    })
    .expect("worker panicked");
    result
}

/// Which engine evaluates the residual query on each element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentEngine {
    /// Character-by-character streaming (the paper's JPStream(16) bar).
    JpStream,
    /// Bit-parallel fast-forward streaming (the speculation the paper lists
    /// as future work for JSONSki itself).
    JsonSki,
}

/// Splits one large record at the first array step of the query and
/// processes the array's elements in parallel.
pub struct SegmentedRunner {
    /// Steps before the splitting array step (locate the array).
    prefix: Path,
    /// The array step itself (index constraints apply to element ordinals).
    split: Step,
    /// Steps after the array step (run per element).
    residual: Path,
    /// Per-element engine.
    engine: SegmentEngine,
}

impl SegmentedRunner {
    /// Prepares a runner for `path`, or `None` when the query has no array
    /// step to split at (e.g. NSPL1's pure-child path) — the caller should
    /// fall back to serial execution, as the paper does implicitly for
    /// queries that expose no parallelism.
    pub fn new(path: &Path) -> Option<Self> {
        Self::with_engine(path, SegmentEngine::JpStream)
    }

    /// Like [`SegmentedRunner::new`] with an explicit per-element engine.
    pub fn with_engine(path: &Path, engine: SegmentEngine) -> Option<Self> {
        let steps = path.steps();
        let split_at = steps.iter().position(|s| s.is_array_step())?;
        Some(SegmentedRunner {
            prefix: Path::new(steps[..split_at].to_vec()),
            split: steps[split_at].clone(),
            residual: Path::new(steps[split_at + 1..].to_vec()),
            engine,
        })
    }

    /// Runs the query over `record` with `threads` workers.
    ///
    /// # Errors
    ///
    /// A message on malformed input.
    pub fn count(&self, record: &[u8], threads: usize) -> Result<usize, String> {
        // 1. Locate the array with a (serial, cheap) streaming pass over the
        //    prefix path.
        let finder = jsonski::JsonSki::new(self.prefix.clone());
        let arrays = finder.matches(record).map_err(|e| e.to_string())?;
        let mut total = 0usize;
        for array in arrays {
            total += self.count_array(array, threads)?;
        }
        Ok(total)
    }

    fn count_array(&self, array: &[u8], threads: usize) -> Result<usize, String> {
        if array.is_empty() || array[0] != b'[' {
            return Ok(0); // kind mismatch: the query cannot match here
        }
        // 2. Element boundaries via the speculative parallel level-0 index.
        let index = pison::build_parallel(array, 1, threads);
        let elements = split_elements(&index, array);
        // 3. Stream the selected elements in parallel with the residual.
        type Residual = Box<dyn Fn(&[u8]) -> Result<usize, String> + Sync>;
        let engine: Residual = match self.engine {
            SegmentEngine::JsonSki => {
                let ski = jsonski::JsonSki::new(self.residual.clone());
                Box::new(move |rec: &[u8]| ski.count(rec).map_err(|e| e.to_string()))
            }
            SegmentEngine::JpStream => {
                let jp = jpstream::JpStream::new(self.residual.clone());
                Box::new(move |rec: &[u8]| jp.count(rec).map_err(|e| e.to_string()))
            }
        };
        let engine = &engine;
        let selected: Vec<&[u8]> = elements
            .iter()
            .enumerate()
            .filter(|(i, _)| self.split.selects_index(*i))
            .map(|(_, &(s, e))| &array[s..e])
            .collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| {
                    let next = &next;
                    let selected = &selected;
                    scope.spawn(move |_| -> Result<usize, String> {
                        let mut local = 0;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= selected.len() {
                                return Ok(local);
                            }
                            local += engine(selected[i])?;
                        }
                    })
                })
                .collect();
            let mut total = 0;
            for h in handles {
                total += h.join().unwrap()?;
            }
            Ok(total)
        })
        .expect("worker panicked")
    }
}

/// Splits the body of `array` (which starts with `[`) into element spans
/// using the level-0 comma bitmap.
fn split_elements(index: &pison::LeveledIndex<'_>, array: &[u8]) -> Vec<(usize, usize)> {
    let end = array.len() - 1; // position of ']'
    let mut out = Vec::new();
    let mut start = 1usize;
    loop {
        let comma = index.next_comma(0, start, end);
        let stop = comma.unwrap_or(end);
        let span = trim(array, start, stop);
        if span.0 < span.1 {
            out.push(span);
        }
        match comma {
            Some(c) => start = c + 1,
            None => break,
        }
    }
    out
}

fn trim(input: &[u8], mut from: usize, mut to: usize) -> (usize, usize) {
    while from < to && matches!(input[from], b' ' | b'\t' | b'\n' | b'\r') {
        from += 1;
    }
    while to > from && matches!(input[to - 1], b' ' | b'\t' | b'\n' | b'\r') {
        to -= 1;
    }
    (from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::JsonSkiEngine;

    #[test]
    fn parallel_record_counting_matches_serial() {
        let path: Path = "$.pd[*].id".parse().unwrap();
        let engine = JsonSkiEngine::new(&path);
        let mut bytes = Vec::new();
        let mut records = Vec::new();
        for i in 0..100 {
            let start = bytes.len();
            bytes.extend_from_slice(format!(r#"{{"pd": [{{"id": {i}}}]}}"#).as_bytes());
            records.push((start, bytes.len()));
            bytes.push(b'\n');
        }
        let serial = count_records_parallel(&engine, &bytes, &records, 1).unwrap();
        let parallel = count_records_parallel(&engine, &bytes, &records, 8).unwrap();
        assert_eq!(serial, 100);
        assert_eq!(parallel, 100);
    }

    #[test]
    fn segmented_runner_matches_serial_on_array_root() {
        let path: Path = "$[*].x".parse().unwrap();
        let mut json = b"[".to_vec();
        for i in 0..50 {
            json.extend_from_slice(format!(r#"{{"x": {i}, "pad": [1, {{"y": 2}}]}},"#).as_bytes());
        }
        json.pop();
        json.push(b']');
        let runner = SegmentedRunner::new(&path).unwrap();
        assert_eq!(runner.count(&json, 4).unwrap(), 50);
        let serial = JsonSkiEngine::new(&path);
        assert_eq!(serial.count(&json).unwrap(), 50);
    }

    #[test]
    fn segmented_runner_respects_index_constraints() {
        let path: Path = "$[10:21].x".parse().unwrap();
        let mut json = b"[".to_vec();
        for i in 0..50 {
            json.extend_from_slice(format!(r#"{{"x": {i}}},"#).as_bytes());
        }
        json.pop();
        json.push(b']');
        let runner = SegmentedRunner::new(&path).unwrap();
        assert_eq!(runner.count(&json, 4).unwrap(), 11);
    }

    #[test]
    fn segmented_runner_with_envelope_prefix() {
        let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
        let json = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]},
                        {"cp": [{"id": 4}, {"id": 5}, {"id": 6}, {"id": 7}]}]}"#;
        let runner = SegmentedRunner::new(&path).unwrap();
        assert_eq!(runner.count(json, 3).unwrap(), 4);
    }

    #[test]
    fn no_array_step_yields_none() {
        let path: Path = "$.mt.vw.nm".parse().unwrap();
        assert!(SegmentedRunner::new(&path).is_none());
    }
}
