//! Parallel runners for the two scenarios of Section 5.1.
//!
//! * [`count_records_parallel`] — the small-records scenario: "each thread
//!   is assigned to process one small record each time" (Figure 12). Since
//!   the unified evaluation API this is a thin wrapper over
//!   [`jsonski::Pipeline`]: records are sharded across a scoped worker pool
//!   through a bounded queue and results merge deterministically in record
//!   order.
//! * [`SegmentedRunner`] — the single-large-record scenario for engines with
//!   speculative parallelism (JPStream(16) in Figure 10): the dominant
//!   top-level array is located, its element boundaries are discovered with
//!   Pison's speculative chunk-parallel index, and the elements are streamed
//!   in parallel with the residual query. This reproduces the *mechanism
//!   class* (speculative parallel processing of one record); see DESIGN.md.

use std::sync::atomic::{AtomicUsize, Ordering};

use jsonpath::{Path, Step};
use jsonski::{CountSink, EngineError, Pipeline, RecordSource};

use crate::engines::Engine;

/// [`RecordSource`] over pre-split `(start, end)` spans of one buffer — the
/// paper's "offset array for starting positions" form of the small-records
/// scenario.
pub struct SpanRecords<'a> {
    bytes: &'a [u8],
    spans: &'a [(usize, usize)],
    next: usize,
}

impl<'a> SpanRecords<'a> {
    /// Wraps `bytes` and its record `spans`.
    pub fn new(bytes: &'a [u8], spans: &'a [(usize, usize)]) -> Self {
        SpanRecords {
            bytes,
            spans,
            next: 0,
        }
    }
}

impl RecordSource for SpanRecords<'_> {
    fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
        match self.spans.get(self.next) {
            Some(&(s, e)) => {
                self.next += 1;
                Ok(Some(&self.bytes[s..e]))
            }
            None => Ok(None),
        }
    }
}

/// Counts matches across `records`, fanning the records out to `threads`
/// pipeline workers (the paper's task-level parallelism for small records).
///
/// # Errors
///
/// The first per-record [`EngineError`] in record order, if any.
pub fn count_records_parallel(
    engine: &dyn Engine,
    bytes: &[u8],
    records: &[(usize, usize)],
    threads: usize,
) -> Result<usize, EngineError> {
    let mut source = SpanRecords::new(bytes, records);
    let mut sink = CountSink::default();
    Pipeline::new()
        .workers(threads)
        .run(engine, &mut source, &mut sink)?;
    Ok(sink.matches)
}

/// Which engine evaluates the residual query on each element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentEngine {
    /// Character-by-character streaming (the paper's JPStream(16) bar).
    JpStream,
    /// Bit-parallel fast-forward streaming (the speculation the paper lists
    /// as future work for JSONSki itself).
    JsonSki,
}

/// Splits one large record at the first array step of the query and
/// processes the array's elements in parallel.
pub struct SegmentedRunner {
    /// Steps before the splitting array step (locate the array).
    prefix: Path,
    /// The array step itself (index constraints apply to element ordinals).
    split: Step,
    /// Steps after the array step (run per element).
    residual: Path,
    /// Per-element engine.
    engine: SegmentEngine,
}

impl SegmentedRunner {
    /// Prepares a runner for `path`, or `None` when the query has no array
    /// step to split at (e.g. NSPL1's pure-child path) — the caller should
    /// fall back to serial execution, as the paper does implicitly for
    /// queries that expose no parallelism.
    pub fn new(path: &Path) -> Option<Self> {
        Self::with_engine(path, SegmentEngine::JpStream)
    }

    /// Like [`SegmentedRunner::new`] with an explicit per-element engine.
    pub fn with_engine(path: &Path, engine: SegmentEngine) -> Option<Self> {
        let steps = path.steps();
        let split_at = steps.iter().position(|s| s.is_array_step())?;
        Some(SegmentedRunner {
            prefix: Path::new(steps[..split_at].to_vec()),
            split: steps[split_at].clone(),
            residual: Path::new(steps[split_at + 1..].to_vec()),
            engine,
        })
    }

    /// Runs the query over `record` with `threads` workers.
    ///
    /// # Errors
    ///
    /// [`EngineError`] on malformed input.
    pub fn count(&self, record: &[u8], threads: usize) -> Result<usize, EngineError> {
        // 1. Locate the array with a (serial, cheap) streaming pass over the
        //    prefix path.
        let finder = jsonski::JsonSki::new(self.prefix.clone());
        let arrays = finder.matches(record).map_err(EngineError::Stream)?;
        let mut total = 0usize;
        for array in arrays {
            total += self.count_array(array.as_raw(), threads)?;
        }
        Ok(total)
    }

    fn count_array(&self, array: &[u8], threads: usize) -> Result<usize, EngineError> {
        if array.is_empty() || array[0] != b'[' {
            return Ok(0); // kind mismatch: the query cannot match here
        }
        // 2. Element boundaries via the speculative parallel level-0 index.
        let index = pison::build_parallel(array, 1, threads);
        let elements = split_elements(&index, array);
        // 3. Stream the selected elements in parallel with the residual.
        type Residual = Box<dyn Fn(&[u8]) -> Result<usize, EngineError> + Sync>;
        let engine: Residual = match self.engine {
            SegmentEngine::JsonSki => {
                let ski = jsonski::JsonSki::new(self.residual.clone());
                Box::new(move |rec: &[u8]| ski.count(rec).map_err(EngineError::Stream))
            }
            SegmentEngine::JpStream => {
                let jp = jpstream::JpStream::new(self.residual.clone());
                Box::new(move |rec: &[u8]| {
                    jp.count(rec).map_err(|e| EngineError::Engine {
                        engine: "JPStream",
                        message: e.to_string(),
                    })
                })
            }
        };
        let engine = &engine;
        let selected: Vec<&[u8]> = elements
            .iter()
            .enumerate()
            .filter(|(i, _)| self.split.selects_index(*i))
            .map(|(_, &(s, e))| &array[s..e])
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| {
                    let next = &next;
                    let selected = &selected;
                    scope.spawn(move || -> Result<usize, EngineError> {
                        let mut local = 0;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= selected.len() {
                                return Ok(local);
                            }
                            local += engine(selected[i])?;
                        }
                    })
                })
                .collect();
            let mut total = 0;
            for h in handles {
                total += h.join().expect("worker panicked")?;
            }
            Ok(total)
        })
    }
}

/// Splits the body of `array` (which starts with `[`) into element spans
/// using the level-0 comma bitmap.
fn split_elements(index: &pison::LeveledIndex<'_>, array: &[u8]) -> Vec<(usize, usize)> {
    let end = array.len() - 1; // position of ']'
    let mut out = Vec::new();
    let mut start = 1usize;
    loop {
        let comma = index.next_comma(0, start, end);
        let stop = comma.unwrap_or(end);
        let span = trim(array, start, stop);
        if span.0 < span.1 {
            out.push(span);
        }
        match comma {
            Some(c) => start = c + 1,
            None => break,
        }
    }
    out
}

fn trim(input: &[u8], mut from: usize, mut to: usize) -> (usize, usize) {
    while from < to && matches!(input[from], b' ' | b'\t' | b'\n' | b'\r') {
        from += 1;
    }
    while to > from && matches!(input[to - 1], b' ' | b'\t' | b'\n' | b'\r') {
        to -= 1;
    }
    (from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ski(path: &Path) -> jsonski::JsonSki {
        jsonski::JsonSki::new(path.clone())
    }

    #[test]
    fn parallel_record_counting_matches_serial() {
        let path: Path = "$.pd[*].id".parse().unwrap();
        let engine = ski(&path);
        let mut bytes = Vec::new();
        let mut records = Vec::new();
        for i in 0..100 {
            let start = bytes.len();
            bytes.extend_from_slice(format!(r#"{{"pd": [{{"id": {i}}}]}}"#).as_bytes());
            records.push((start, bytes.len()));
            bytes.push(b'\n');
        }
        let serial = count_records_parallel(&engine, &bytes, &records, 1).unwrap();
        let parallel = count_records_parallel(&engine, &bytes, &records, 8).unwrap();
        assert_eq!(serial, 100);
        assert_eq!(parallel, 100);
    }

    #[test]
    fn parallel_record_counting_reports_first_error() {
        let path: Path = "$.a".parse().unwrap();
        let engine = ski(&path);
        let bytes = br#"{"a": 1} {"a" 2} {"a": 3}"#;
        let records = vec![(0, 8), (9, 16), (17, 25)];
        let err = count_records_parallel(&engine, bytes, &records, 4).unwrap_err();
        assert!(matches!(err, EngineError::Stream(_)), "{err}");
    }

    #[test]
    fn segmented_runner_matches_serial_on_array_root() {
        let path: Path = "$[*].x".parse().unwrap();
        let mut json = b"[".to_vec();
        for i in 0..50 {
            json.extend_from_slice(format!(r#"{{"x": {i}, "pad": [1, {{"y": 2}}]}},"#).as_bytes());
        }
        json.pop();
        json.push(b']');
        let runner = SegmentedRunner::new(&path).unwrap();
        assert_eq!(runner.count(&json, 4).unwrap(), 50);
        assert_eq!(ski(&path).count(&json).unwrap(), 50);
    }

    #[test]
    fn segmented_runner_respects_index_constraints() {
        let path: Path = "$[10:21].x".parse().unwrap();
        let mut json = b"[".to_vec();
        for i in 0..50 {
            json.extend_from_slice(format!(r#"{{"x": {i}}},"#).as_bytes());
        }
        json.pop();
        json.push(b']');
        let runner = SegmentedRunner::new(&path).unwrap();
        assert_eq!(runner.count(&json, 4).unwrap(), 11);
    }

    #[test]
    fn segmented_runner_with_envelope_prefix() {
        let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
        let json = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]},
                        {"cp": [{"id": 4}, {"id": 5}, {"id": 6}, {"id": 7}]}]}"#;
        let runner = SegmentedRunner::new(&path).unwrap();
        assert_eq!(runner.count(json, 3).unwrap(), 4);
    }

    #[test]
    fn no_array_step_yields_none() {
        let path: Path = "$.mt.vw.nm".parse().unwrap();
        assert!(SegmentedRunner::new(&path).is_none());
    }
}
