//! Regenerates the paper's fig11.
fn main() {
    harness::scenario::fig11();
}
