//! Regenerates the paper's fig12.
fn main() {
    harness::scenario::fig12();
}
