//! Regenerates the paper's Figure 13 (memory footprint), with the counting
//! allocator installed so per-engine peak heap is observable.

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc;

fn main() {
    harness::scenario::fig13();
}
