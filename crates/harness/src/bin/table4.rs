//! Regenerates the paper's table4.
fn main() {
    harness::scenario::table4();
}
