//! Regenerates the paper's fig14.
fn main() {
    harness::scenario::fig14();
}
