//! Regenerates the paper's fig10.
fn main() {
    harness::scenario::fig10();
}
