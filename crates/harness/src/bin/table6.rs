//! Regenerates the paper's table6.
fn main() {
    harness::scenario::table6();
}
