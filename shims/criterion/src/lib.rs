//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks in this workspace compile and run with no network access:
//! this path dependency provides the API subset they use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) backed by a
//! simple wall-clock timing loop. There is no statistical analysis, HTML
//! report, or saved baseline — each benchmark prints mean time per
//! iteration and derived throughput.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        // One warmup pass, then the timed samples.
        f(&mut bencher, input);
        bencher.reset();
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }
        self.report(&id.id, &bencher);
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.reset();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        self.report(&id, &bencher);
    }

    /// Ends the group (reporting is per-benchmark; nothing is buffered).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("{}/{id}: no iterations", self.name);
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!(" ({:.1} MiB/s)", bytes as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!(" ({:.0} elem/s)", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!("{}/{id}: {:.3} ms/iter{rate}", self.name, per_iter * 1e3);
    }
}

/// Times closures on behalf of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `f`, accumulating into this benchmark's total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }

    fn reset(&mut self) {
        self.iters = 0;
        self.elapsed = Duration::ZERO;
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a benchmark executable (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this runner ignores them.
            $($group();)+
        }
    };
}
