//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::{BoxedStrategy, Strategy};

/// Strategy for `Vec`s whose length is drawn from `sizes` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
    assert!(sizes.start < sizes.end, "empty size range");
    BoxedStrategy::from_fn(move |rng| {
        let len = rng.usize_in(sizes.start, sizes.end);
        (0..len).map(|_| element.generate(rng)).collect()
    })
}

/// Strategy for `BTreeMap`s with `sizes.start..sizes.end` entries (best
/// effort: key collisions may make the map smaller, as in real proptest).
pub fn btree_map<K, V>(
    keys: K,
    values: V,
    sizes: Range<usize>,
) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    assert!(sizes.start < sizes.end, "empty size range");
    BoxedStrategy::from_fn(move |rng| {
        let want = rng.usize_in(sizes.start, sizes.end);
        let mut map = BTreeMap::new();
        // Bounded attempts: small key universes may not have `want`
        // distinct keys at all.
        for _ in 0..want * 4 {
            if map.len() >= want {
                break;
            }
            map.insert(keys.generate(rng), values.generate(rng));
        }
        map
    })
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::from_name("vec");
        let s = super::vec(0u8..10, 2..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn btree_map_keys_are_distinct_and_bounded() {
        let mut rng = TestRng::from_name("map");
        let s = super::btree_map("[a-d]", 0u32..5, 0..5);
        for _ in 0..500 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 5);
        }
    }
}
