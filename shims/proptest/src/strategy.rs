//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest `Strategy` (which builds shrinkable value
/// trees), this shim's strategies generate plain values directly.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value: 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Builds a depth-bounded recursive strategy: `self` is the leaf case
    /// and `recurse` wraps an inner strategy into the composite case.
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Bias towards the composite case so documents are usually
            // containers; the leaf arm bounds the expected size.
            current = union(vec![(1, leaf.clone()), (3, deeper)]);
        }
        current
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn from_fn<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Free-function form of [`Strategy::generate`], used by the `proptest!`
/// macro so it works without the trait in scope.
pub fn generate_with<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.generate(rng)
}

/// Weighted union of boxed strategies (backs `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy::from_fn(move |rng| {
        let mut pick = rng.below(total);
        for (weight, arm) in &arms {
            let w = *weight as u64;
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    })
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Uniform over all scalar values; the surrogate gap maps to the
        // replacement character (still a valid, representative char).
        let v = (rng.next_u64() % 0x11_0000) as u32;
        char::from_u32(v).unwrap_or('\u{FFFD}')
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy::from_fn(T::arbitrary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_unions_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let s = union(vec![(1, (0u32..10).boxed()), (3, (100u32..=109).boxed())]);
        for _ in 0..2000 {
            let v = s.generate(&mut rng);
            assert!((0..10).contains(&v) || (100..=109).contains(&v), "{v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = TestRng::from_name("recursive");
        let s = Just(1usize).boxed().prop_recursive(4, 64, 6, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(|vs| vs.iter().sum::<usize>() + 1)
        });
        for _ in 0..500 {
            assert!(s.generate(&mut rng) >= 1);
        }
    }
}
