//! Test execution support: run configuration, the deterministic RNG, and
//! the case-failure error type.

use std::fmt;

/// Per-block run configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator; seeded from the test name so every
/// run of a given test replays the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `lo..hi` (`lo < hi`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }
}
