//! Numeric "any value" strategies (`prop::num::u8::ANY`, ...).

macro_rules! any_module {
    ($($mod_name:ident : $t:ty),*) => {$(
        /// Strategies for this integer type.
        pub mod $mod_name {
            use crate::strategy::Strategy;
            use crate::test_runner::TestRng;

            /// Strategy yielding any value of the type.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            /// Any value, uniformly distributed.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

any_module!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i64: i64);
