//! Regex-subset string strategies: `"[a-z][a-z0-9_]{0,8}"` and friends.
//!
//! A `&'static str` is itself a `Strategy<Value = String>`; the pattern
//! grammar covers what this workspace's tests use: literal characters,
//! character classes with escapes and ranges, `\PC` (any printable), and
//! the `*`, `+`, `?`, `{n}`, `{m,n}` quantifiers.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Upper repetition bound for the open-ended `*` and `+` quantifiers.
const UNBOUNDED_MAX: usize = 8;

#[derive(Clone, Debug)]
enum Atom {
    /// One fixed character.
    Literal(char),
    /// Inclusive character ranges (single chars are degenerate ranges).
    Class(Vec<(char, char)>),
    /// `\PC`: any printable character.
    Printable,
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick as u32)
                            .expect("class range is valid chars");
                    }
                    pick -= span;
                }
                unreachable!("class pick out of range")
            }
            Atom::Printable => {
                // Mostly printable ASCII, occasionally multibyte, to keep
                // parser fuzz targets honest about UTF-8.
                if rng.below(10) == 0 {
                    const EXOTIC: &[char] = &['é', 'λ', '中', '∅', '🦀'];
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    char::from_u32(b' ' as u32 + rng.below(95) as u32).unwrap()
                }
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses one `[...]` class body starting after the `[`; returns the atom
/// and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            assert!(i < chars.len(), "dangling escape in class");
            unescape(chars[i])
        } else {
            chars[i]
        };
        i += 1;
        // Range `a-z` (a `-` not followed by `]` binds the previous char).
        if pending.is_some() && c == '-' && chars.get(i).is_some_and(|&n| n != ']') {
            let lo = pending.take().unwrap();
            let hi = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            assert!(lo <= hi, "inverted class range");
            ranges.push((lo, hi));
            continue;
        }
        if let Some(prev) = pending.replace(c) {
            ranges.push((prev, prev));
        }
    }
    if let Some(prev) = pending {
        ranges.push((prev, prev));
    }
    assert!(i < chars.len(), "unterminated character class");
    assert!(!ranges.is_empty(), "empty character class");
    (Atom::Class(ranges), i + 1)
}

/// Parses a quantifier at `i` if present; returns `(min, max, next_index)`.
fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, UNBOUNDED_MAX, i + 1),
        Some('+') => (1, UNBOUNDED_MAX, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("bad quantifier bound"),
                    hi.parse().expect("bad quantifier bound"),
                ),
                None => {
                    let n = body.parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (atom, next) = parse_class(&chars, i + 1);
                i = next;
                atom
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape");
                if chars[i] == 'P' || chars[i] == 'p' {
                    // `\PC` / `\pL`-style unicode class: consume the
                    // category letter and generate printable text.
                    i += 2;
                    Atom::Printable
                } else {
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Literal(c)
                }
            }
            '.' => {
                i += 1;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        atoms.push((atom, min, max));
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse_pattern(self) {
            let n = if min == max {
                min
            } else {
                rng.usize_in(min, max + 1)
            };
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn samples(pat: &'static str, n: usize) -> Vec<String> {
        let mut rng = TestRng::from_name(pat);
        (0..n).map(|_| pat.generate(&mut rng)).collect()
    }

    #[test]
    fn identifier_pattern() {
        for s in samples("[a-z][a-z0-9_]{0,8}", 500) {
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase(), "{s}");
            assert!(s.len() <= 9);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_escapes() {
        // The suffix pattern from the fast-forward property tests.
        for s in samples("[ ,x\\]}]*", 500) {
            assert!(s.len() <= UNBOUNDED_MAX);
            assert!(s.chars().all(|c| " ,x]}".contains(c)), "{s}");
        }
    }

    #[test]
    fn json_garbage_pattern() {
        for s in samples("[\\{\\}\\[\\],:\"\\\\a1 ]{0,200}", 100) {
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| "{}[],:\"\\a1 ".contains(c)), "{s}");
        }
    }

    #[test]
    fn printable_pattern() {
        for s in samples("\\PC{0,40}", 300) {
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
