//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must resolve and build with no network access, so this
//! path dependency re-implements the subset of proptest's API the repo's
//! property tests use: `Strategy` (with `prop_map`, `prop_recursive`,
//! `boxed`), `BoxedStrategy`, `Just`, ranges, tuples, regex-subset string
//! strategies, `collection::{vec, btree_map}`, `num::u8::ANY`, `any`,
//! `prop_oneof!` (weighted and unweighted), `proptest!`, `prop_assert!`,
//! and `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * **Generate-only** — no shrinking. A failing case panics with the
//!   assertion message and the case number; the run is deterministic (the
//!   RNG is seeded from the test name), so failures reproduce exactly.
//! * The regex strategy supports the subset used here: character classes
//!   (with escapes and ranges), literals, `\PC`, and the `*`, `+`, `?`,
//!   `{n}`, `{m,n}` quantifiers.

#![deny(missing_docs)]

pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` etc. work via the
/// prelude, as in the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
    pub use crate::strategy;
}

/// The glob-import surface used by the tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted choice between strategies; all arms must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property test body, failing the case (not
/// unwinding) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values compare equal inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a regular `#[test]` that runs the body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            // Bind each strategy once; the per-case values shadow these
            // bindings inside the loop only.
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::generate_with(&$arg, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}/{}: {e}", config.cases);
                }
            }
        }
    )*};
}
