//! Offline stand-in for the `rand` crate.
//!
//! The workspace must build with no network access, so instead of the real
//! `rand` this path dependency provides the small API subset the repo uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool,
//! gen_ratio}` over integer and float ranges. The generator is splitmix64 —
//! statistically fine for dataset synthesis and tests, not cryptographic.
//! Streams are deterministic per seed but do NOT match upstream `rand`'s.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one sample from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = widening_mul(rng.next_u64(), span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = widening_mul(rng.next_u64(), span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `0..span` without modulo bias worth caring
/// about for test data (fixed-point multiply).
fn widening_mul(word: u64, span: u128) -> u128 {
    debug_assert!(span <= u64::MAX as u128 + 1);
    (word as u128 * span) >> 64
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        unit_f64(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard test/data generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range(-90.0..90.0);
            assert!((-90.0..90.0).contains(&f));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_mixes() {
        let mut r = StdRng::seed_from_u64(2);
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((350..650).contains(&heads), "{heads}");
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        let quarter = (0..1000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((150..350).contains(&quarter), "{quarter}");
    }
}
