//! **jsonski-repro** — a Rust reproduction of *JSONSki: Streaming
//! Semi-structured Data with Bit-Parallel Fast-Forwarding* (Jiang & Zhao,
//! ASPLOS 2022), as a facade over the workspace crates:
//!
//! * [`jsonski`] — the paper's contribution: streaming JSONPath evaluation
//!   with bit-parallel fast-forwarding (start here; see [`jsonski::JsonSki`]).
//! * [`jsonpath`] — the shared JSONPath parser and query automaton.
//! * [`simdbits`] — the bit-parallel block classification substrate.
//! * [`jpstream`], [`domparser`], [`tapeparser`], [`pison`] — the four
//!   baseline engines (JPStream / RapidJSON / simdjson / Pison classes).
//! * [`datagen`] — synthetic datasets shaped to the paper's Table 4.
//! * [`harness`] — the evaluation harness regenerating every table/figure.
//!
//! # Quick start
//!
//! ```
//! use jsonski_repro::jsonski::JsonSki;
//!
//! let json = br#"{"place": {"name": "Manhattan", "bounding_box": {}}}"#;
//! let query = JsonSki::compile("$.place.name")?;
//! assert_eq!(query.matches(json)?, vec![&b"\"Manhattan\""[..]]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub use datagen;
pub use domparser;
pub use harness;
pub use jpstream;
pub use jsonpath;
pub use jsonski;
pub use pison;
pub use simdbits;
pub use tapeparser;
